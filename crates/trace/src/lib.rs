//! Simulated-time event tracing for the origin2k runtimes.
//!
//! Every virtual-clock charge made by the `parallel`, `mp`, `shmem`, and
//! `sas` runtimes can be recorded as an [`Event`] — a `[t0, t1]` span on
//! one PE's virtual timeline, tagged with a semantic [`EventKind`], the
//! [`TimeCat`] the span was charged to, payload size, and (for waits) a
//! [`Dep`] edge naming the remote activity that unblocked it.
//!
//! Because exactly one event is recorded per clock advance (zero-duration
//! charges are skipped, adjacent bulk events are coalesced), the summed
//! event durations per category equal the clock's own [`TimeBreakdown`] —
//! tracing is an exact decomposition of simulated time, never a sample.
//!
//! Consumers:
//! - [`chrome::to_chrome_json`]: Chrome `trace_event` JSON, one track per
//!   PE, loadable in Perfetto or `chrome://tracing`.
//! - [`chrome::text_timeline`]: a compact terminal timeline.
//! - [`critpath::critical_path`]: follows wait edges backward from the
//!   final event to attribute the end-to-end simulated time to the chain
//!   of operations that actually determined it.
//!
//! Recording is `Off` by default and costs one branch per charge; it
//! never touches the clock, so enabling it cannot perturb simulated time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use machine::{SimTime, TimeBreakdown, TimeCat};

pub mod chrome;
pub mod critpath;

/// Semantic label of a traced span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// CPU computation (`Ctx::compute*`).
    Compute,
    /// Generic categorised charge with no finer label (`Ctx::advance`).
    Other,
    /// Waiting for the slowest PE to arrive at a global barrier.
    BarrierWait,
    /// The barrier operation itself (fan-in/fan-out cost).
    Barrier,
    /// Waiting at a node-local barrier.
    NodeBarrierWait,
    /// The node-local barrier operation.
    NodeBarrier,
    /// One log-depth transfer step of a blackboard collective.
    CollStep,
    /// Waiting for the previous lock holder to release.
    LockWait,
    /// Distance-priced lock acquisition round trip.
    LockAcquire,
    /// Message-passing send overhead.
    Send,
    /// Waiting for a message to arrive (includes network transit).
    RecvWait,
    /// Message-passing receive overhead.
    Recv,
    /// One-sided put.
    Put,
    /// One-sided get.
    Get,
    /// Remote atomic operation.
    Amo,
    /// SHMEM collective step (broadcast / reduction / fcollect rounds).
    ShmemColl,
    /// Cache miss served by local memory.
    MissLocal,
    /// Cache miss served by a remote node (fills, forwards, invalidations).
    MissRemote,
    /// Dirty-line writeback on eviction.
    Writeback,
    /// Cooperative-scheduler floor handoff (instant marker, `t1 == t0`):
    /// the PE yielded here and another PE ran before it resumed. Only
    /// recorded when [`set_sched_events`] is on.
    SchedHandoff,
    /// One served client request of the `o2k-serve` workload: the span is
    /// the server-side service time, `bytes` the value payload, and `peer`
    /// the shard owner the lookup resolved to.
    Request,
    /// A work-stealing claim under the MP hot-shard mitigation: the span
    /// covers the remote claim round trip plus the batch transfer, `bytes`
    /// the stolen payload, and `peer` the victim PE.
    Steal,
}

impl EventKind {
    /// Every kind, for tabulation.
    pub const ALL: [EventKind; 22] = [
        EventKind::Compute,
        EventKind::Other,
        EventKind::BarrierWait,
        EventKind::Barrier,
        EventKind::NodeBarrierWait,
        EventKind::NodeBarrier,
        EventKind::CollStep,
        EventKind::LockWait,
        EventKind::LockAcquire,
        EventKind::Send,
        EventKind::RecvWait,
        EventKind::Recv,
        EventKind::Put,
        EventKind::Get,
        EventKind::Amo,
        EventKind::ShmemColl,
        EventKind::MissLocal,
        EventKind::MissRemote,
        EventKind::Writeback,
        EventKind::SchedHandoff,
        EventKind::Request,
        EventKind::Steal,
    ];

    /// Stable display name (also used as the Perfetto slice name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Compute => "compute",
            EventKind::Other => "other",
            EventKind::BarrierWait => "barrier_wait",
            EventKind::Barrier => "barrier",
            EventKind::NodeBarrierWait => "node_barrier_wait",
            EventKind::NodeBarrier => "node_barrier",
            EventKind::CollStep => "coll_step",
            EventKind::LockWait => "lock_wait",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::Send => "send",
            EventKind::RecvWait => "recv_wait",
            EventKind::Recv => "recv",
            EventKind::Put => "put",
            EventKind::Get => "get",
            EventKind::Amo => "amo",
            EventKind::ShmemColl => "shmem_coll",
            EventKind::MissLocal => "miss_local",
            EventKind::MissRemote => "miss_remote",
            EventKind::Writeback => "writeback",
            EventKind::SchedHandoff => "sched_handoff",
            EventKind::Request => "request",
            EventKind::Steal => "steal",
        }
    }

    /// Dense index into `ALL`-sized tables.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL")
    }

    /// High-frequency bulk kinds whose adjacent events may be merged
    /// without losing structure (communication and sync events stay
    /// one-per-operation so dependency edges keep exact endpoints).
    fn coalesces(self) -> bool {
        matches!(
            self,
            EventKind::Compute
                | EventKind::Other
                | EventKind::MissLocal
                | EventKind::MissRemote
                | EventKind::Writeback
        )
    }
}

/// A wait edge: the remote activity whose completion unblocked this span.
/// `pe`'s timeline at time `t` is where a critical-path walk continues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// PE whose activity this span waited on.
    pub pe: u32,
    /// Virtual time at which that activity completed.
    pub t: SimTime,
}

/// One span of simulated time on one PE's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// PE this span belongs to.
    pub pe: u32,
    /// Span start (virtual ns).
    pub t0: SimTime,
    /// Span end (virtual ns); `t1 > t0` for every recorded span. The one
    /// exception is [`EventKind::SchedHandoff`], an instant marker with
    /// `t1 == t0` recorded via [`Recorder::record_instant`].
    pub t1: SimTime,
    /// Semantic label.
    pub kind: EventKind,
    /// Category the span was charged to on the clock.
    pub cat: TimeCat,
    /// Payload bytes moved (0 when not applicable).
    pub bytes: u32,
    /// Communication partner: destination/source PE, or home *node* for
    /// cache-miss events.
    pub peer: Option<u32>,
    /// Wait edge for blocking events.
    pub dep: Option<Dep>,
}

impl Event {
    /// Span duration.
    #[inline]
    pub fn dur(&self) -> SimTime {
        self.t1 - self.t0
    }
}

/// Per-PE event recorder owned next to the `Clock`.
///
/// `Off` is the default and costs a single discriminant check per charge.
#[derive(Debug, Default)]
pub enum Recorder {
    /// Recording disabled; `record` is a no-op.
    #[default]
    Off,
    /// Recording enabled; events accumulate in clock order.
    On(Vec<Event>),
}

impl Recorder {
    /// A recorder in the given state.
    pub fn new(enabled: bool) -> Self {
        if enabled {
            Recorder::On(Vec::new())
        } else {
            Recorder::Off
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, Recorder::On(_))
    }

    /// Record a span. Zero-duration spans are dropped; adjacent spans of
    /// the same bulk kind/category/peer are merged in place.
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if let Recorder::On(events) = self {
            debug_assert!(ev.t1 >= ev.t0, "event runs backwards");
            if ev.t1 == ev.t0 {
                return;
            }
            if ev.kind.coalesces() && ev.dep.is_none() {
                if let Some(last) = events.last_mut() {
                    if last.kind == ev.kind
                        && last.cat == ev.cat
                        && last.peer == ev.peer
                        && last.dep.is_none()
                        && last.t1 == ev.t0
                    {
                        last.t1 = ev.t1;
                        last.bytes = last.bytes.saturating_add(ev.bytes);
                        return;
                    }
                }
            }
            events.push(ev);
        }
    }

    /// Record an instant marker (`t1 == t0` is kept, never coalesced).
    /// Used for [`EventKind::SchedHandoff`] scheduler events.
    #[inline]
    pub fn record_instant(&mut self, ev: Event) {
        if let Recorder::On(events) = self {
            debug_assert!(ev.t1 == ev.t0, "instant events have no duration");
            events.push(ev);
        }
    }

    /// Take the recorded events, leaving the recorder `Off`.
    pub fn take(&mut self) -> Vec<Event> {
        match std::mem::take(self) {
            Recorder::Off => Vec::new(),
            Recorder::On(events) => events,
        }
    }
}

/// One occupancy interval of a directed interconnect link, produced by the
/// `o2k-net` contention model when span recording is enabled. Unlike
/// [`Event`]s these live on *link* timelines, not PE timelines, and are
/// exported as a separate process in the Chrome JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpan {
    /// Link id (index into [`Trace::link_names`]).
    pub link: u32,
    /// Occupancy start (virtual ns).
    pub t0: SimTime,
    /// Occupancy end (virtual ns); always `t1 > t0`.
    pub t1: SimTime,
    /// Payload bytes of the transfer holding the link.
    pub bytes: u32,
    /// PE that issued the transfer.
    pub pe: u32,
}

/// A fault interval on a directed interconnect link, produced by the
/// `o2k-net` fault model: the span during which a scheduled
/// `machine::FaultKind` was in force (e.g. `"fault:kill"`,
/// `"fault:deg8"`). Rendered on the same link tracks as [`LinkSpan`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpan {
    /// Link id (index into [`Trace::link_names`]).
    pub link: u32,
    /// Fault onset (virtual ns).
    pub t0: SimTime,
    /// End of the interval (next fault event or the run horizon).
    pub t1: SimTime,
    /// Slice label, `"fault:<kind>"`.
    pub label: String,
}

/// A complete team trace: one clock-ordered event list per PE.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// `per_pe[pe]` is PE `pe`'s event list, ordered by time.
    pub per_pe: Vec<Vec<Event>>,
    /// Display names of interconnect links, indexed by [`LinkSpan::link`].
    /// Empty unless the run recorded link occupancy.
    pub link_names: Vec<String>,
    /// Link occupancy intervals in routing order (not sorted per link).
    pub link_spans: Vec<LinkSpan>,
    /// Link fault intervals (empty unless a fault plan was active).
    pub link_faults: Vec<FaultSpan>,
}

impl Trace {
    /// Assemble from per-PE event lists (indexed by PE).
    pub fn new(per_pe: Vec<Vec<Event>>) -> Self {
        Trace {
            per_pe,
            link_names: Vec::new(),
            link_spans: Vec::new(),
            link_faults: Vec::new(),
        }
    }

    /// Number of PEs.
    pub fn pes(&self) -> usize {
        self.per_pe.len()
    }

    /// Total number of recorded events.
    pub fn total_events(&self) -> usize {
        self.per_pe.iter().map(Vec::len).sum()
    }

    /// Latest span end across all PEs (the traced finish time).
    pub fn finish(&self) -> SimTime {
        self.per_pe
            .iter()
            .filter_map(|evs| evs.last())
            .map(|e| e.t1)
            .max()
            .unwrap_or(0)
    }

    /// Per-category time accounted by one PE's events. Equals that PE's
    /// clock `TimeBreakdown` when every charge was traced.
    pub fn pe_breakdown(&self, pe: usize) -> TimeBreakdown {
        let mut b = TimeBreakdown::default();
        for e in &self.per_pe[pe] {
            match e.cat {
                TimeCat::Busy => b.busy += e.dur(),
                TimeCat::Local => b.local += e.dur(),
                TimeCat::Remote => b.remote += e.dur(),
                TimeCat::Sync => b.sync += e.dur(),
            }
        }
        b
    }

    /// Check the structural invariants: per PE, events are strictly
    /// ordered, non-overlapping, and non-empty spans.
    pub fn validate(&self) -> Result<(), String> {
        for (pe, evs) in self.per_pe.iter().enumerate() {
            let mut prev_end = 0;
            for (i, e) in evs.iter().enumerate() {
                if e.pe as usize != pe {
                    return Err(format!("PE {pe} event {i} tagged pe={}", e.pe));
                }
                let instant = e.kind == EventKind::SchedHandoff;
                if instant && e.t1 != e.t0 {
                    return Err(format!(
                        "PE {pe} event {i} sched_handoff with duration [{}, {}]",
                        e.t0, e.t1
                    ));
                }
                if !instant && e.t1 <= e.t0 {
                    return Err(format!("PE {pe} event {i} empty span [{}, {}]", e.t0, e.t1));
                }
                if e.t0 < prev_end {
                    return Err(format!(
                        "PE {pe} event {i} starts at {} before previous end {}",
                        e.t0, prev_end
                    ));
                }
                prev_end = e.t1;
            }
        }
        Ok(())
    }
}

// --- process-global enablement and trace sink -------------------------------
//
// The `repro` binary flips the global flag so every `Team::run` in any
// experiment records, and collects finished traces from the sink — no
// per-experiment code changes needed.

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static SCHED_EVENTS: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<Trace>> = Mutex::new(Vec::new());

/// Enable or disable tracing process-wide (in addition to any per-`Team`
/// opt-in). Affects teams created after the call.
pub fn set_enabled(on: bool) {
    GLOBAL_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether process-wide tracing is on.
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::SeqCst)
}

/// Also record [`EventKind::SchedHandoff`] instants at cooperative
/// scheduler switches. Off by default: a deterministic CC-SAS run can
/// switch at nearly every miss, which would dominate exported traces.
pub fn set_sched_events(on: bool) {
    SCHED_EVENTS.store(on, Ordering::SeqCst);
}

/// Whether scheduler handoff instants are being recorded.
pub fn sched_events() -> bool {
    SCHED_EVENTS.load(Ordering::SeqCst)
}

/// Deposit a finished trace for later collection (called by the team
/// runtime when tracing was enabled globally).
pub fn sink_push(trace: Trace) {
    SINK.lock().unwrap_or_else(|e| e.into_inner()).push(trace);
}

/// Take all deposited traces, in completion order.
pub fn sink_drain() -> Vec<Trace> {
    std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()))
}

#[cfg(test)]
pub(crate) fn ev(pe: u32, t0: SimTime, t1: SimTime, kind: EventKind, cat: TimeCat) -> Event {
    Event {
        pe,
        t0,
        t1,
        kind,
        cat,
        bytes: 0,
        peer: None,
        dep: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_records_nothing() {
        let mut r = Recorder::default();
        r.record(ev(0, 0, 10, EventKind::Compute, TimeCat::Busy));
        assert!(!r.is_on());
        assert!(r.take().is_empty());
    }

    #[test]
    fn zero_duration_events_dropped() {
        let mut r = Recorder::new(true);
        r.record(ev(0, 5, 5, EventKind::Send, TimeCat::Remote));
        assert!(r.take().is_empty());
    }

    #[test]
    fn adjacent_compute_coalesces() {
        let mut r = Recorder::new(true);
        r.record(ev(0, 0, 10, EventKind::Compute, TimeCat::Busy));
        r.record(ev(0, 10, 25, EventKind::Compute, TimeCat::Busy));
        r.record(ev(0, 25, 30, EventKind::Send, TimeCat::Remote));
        r.record(ev(0, 30, 35, EventKind::Send, TimeCat::Remote));
        let evs = r.take();
        assert_eq!(evs.len(), 3, "computes merge, sends do not: {evs:?}");
        assert_eq!((evs[0].t0, evs[0].t1), (0, 25));
    }

    #[test]
    fn gap_breaks_coalescing() {
        let mut r = Recorder::new(true);
        r.record(ev(0, 0, 10, EventKind::Compute, TimeCat::Busy));
        r.record(ev(0, 20, 30, EventKind::Compute, TimeCat::Busy));
        assert_eq!(r.take().len(), 2);
    }

    #[test]
    fn trace_breakdown_and_validate() {
        let t = Trace::new(vec![
            vec![
                ev(0, 0, 10, EventKind::Compute, TimeCat::Busy),
                ev(0, 10, 14, EventKind::Send, TimeCat::Remote),
            ],
            vec![ev(1, 2, 9, EventKind::RecvWait, TimeCat::Sync)],
        ]);
        assert!(t.validate().is_ok());
        assert_eq!(t.finish(), 14);
        assert_eq!(t.total_events(), 3);
        let b = t.pe_breakdown(0);
        assert_eq!((b.busy, b.remote), (10, 4));
        assert_eq!(t.pe_breakdown(1).sync, 7);
    }

    #[test]
    fn validate_rejects_overlap() {
        let t = Trace::new(vec![vec![
            ev(0, 0, 10, EventKind::Compute, TimeCat::Busy),
            ev(0, 5, 12, EventKind::Compute, TimeCat::Busy),
        ]]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn sink_roundtrip() {
        sink_push(Trace::new(vec![vec![ev(
            0,
            0,
            1,
            EventKind::Compute,
            TimeCat::Busy,
        )]]));
        let drained = sink_drain();
        assert!(!drained.is_empty());
        assert!(sink_drain().is_empty());
    }

    #[test]
    fn sched_handoff_instants_validate_and_record() {
        let mut r = Recorder::new(true);
        r.record(ev(0, 0, 10, EventKind::Compute, TimeCat::Busy));
        r.record_instant(ev(0, 10, 10, EventKind::SchedHandoff, TimeCat::Sync));
        r.record(ev(0, 10, 20, EventKind::Compute, TimeCat::Busy));
        let evs = r.take();
        assert_eq!(evs.len(), 3, "instant kept, computes not merged across it");
        let t = Trace::new(vec![evs]);
        assert!(t.validate().is_ok(), "{:?}", t.validate());
        // Instants contribute no time.
        assert_eq!(t.pe_breakdown(0).busy, 20);
        assert_eq!(t.pe_breakdown(0).sync, 0);
    }

    #[test]
    fn validate_rejects_nonzero_duration_handoff() {
        let t = Trace::new(vec![vec![ev(
            0,
            0,
            5,
            EventKind::SchedHandoff,
            TimeCat::Sync,
        )]]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn kind_indices_are_dense() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}

//! The reconstructed evaluation suite (DESIGN.md §3): tables T1–T3,
//! figures F1–F8, ablations A1–A6, scheduler study S1.

use std::sync::Arc;

use apps::{AmrConfig, NBodyConfig};
use apps::{App, Model};
use machine::{Machine, MachineConfig};
use mesh::adaptive::AdaptiveMesh;
use mesh::dual::dual_graph;
use o2k_core::figure::{line_chart, stacked_bars};
use o2k_core::table::{cells, ms, render, x2};
use o2k_core::{effort_table, sweep_models, SweepResult};
use partition::{
    diffusion::diffuse, edge_cut, hilbert_partition, imbalance, morton_partition,
    multilevel_partition, rcb_partition, CsrGraph, WeightedPoint,
};
use sas::PagePolicy;

/// All experiment ids, in suite order.
pub const EXPERIMENT_IDS: [&str; 27] = [
    "t1", "t2", "t3", "t4", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "a1", "a2", "a3",
    "a4", "a5", "a6", "s1", "n1", "n2", "n3", "q1", "q2", "e1", "c1",
];

/// Processor sweep used by the figure experiments.
fn sweep_pes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    }
}

fn nbody_cfg(quick: bool) -> NBodyConfig {
    if quick {
        NBodyConfig {
            n: 512,
            steps: 2,
            ..NBodyConfig::default()
        }
    } else {
        NBodyConfig {
            n: 2048,
            steps: 3,
            ..NBodyConfig::default()
        }
    }
}

fn amr_cfg(quick: bool) -> AmrConfig {
    if quick {
        AmrConfig::small()
    } else {
        AmrConfig {
            nx: 32,
            ny: 32,
            steps: 5,
            sweeps: 5,
            ..AmrConfig::default()
        }
    }
}

fn machine(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::origin2000()))
}

/// Same machine, but with the interconnect contention model switched on.
fn machine_queued(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(
        p,
        MachineConfig {
            contention: machine::ContentionMode::Queued,
            ..MachineConfig::origin2000()
        },
    ))
}

/// Same machine, but with the full contended-resource fabric: links plus
/// per-node SysAD buses and per-router hub arbitration ports.
fn machine_fabric(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(
        p,
        MachineConfig {
            contention: machine::ContentionMode::Fabric,
            ..MachineConfig::origin2000()
        },
    ))
}

/// Run one experiment by id; `quick` shrinks problem sizes and sweeps.
///
/// # Panics
/// Panics on an unknown id.
pub fn run_experiment(id: &str, quick: bool) -> String {
    match id {
        "t1" => t1_machine(),
        "t2" => t2_effort(),
        "t3" => t3_partitioners(),
        "t4" => t4_microbench(),
        "f1" => f_speedup(App::NBody, quick),
        "f2" => f_breakdown(App::NBody, quick),
        "f3" => f_speedup(App::Amr, quick),
        "f4" => f_breakdown(App::Amr, quick),
        "f5" => f5_comm_volume(quick),
        "f6" => f6_balance(quick),
        "f7" => f7_traffic_structure(quick),
        "f8" => f8_cache(quick),
        "f9" => f9_critical_path(quick),
        "a1" => a1_paging(quick),
        "a2" => a2_remap(quick),
        "a3" => a3_partitioning(quick),
        "a4" => a4_numa_sensitivity(quick),
        "a5" => a5_hybrid(quick),
        "a6" => a6_self_schedule(quick),
        "s1" => s1_scheduler_policies(quick),
        "n1" => n1_contention(quick),
        "n2" => n2_fault(quick),
        "n3" => n3_bus_saturation(quick),
        "q1" => q1_serving(quick),
        "q2" => q2_mitigation(quick),
        "e1" => e1_scale(quick),
        "c1" => c1_warm_start(quick),
        other => panic!("unknown experiment id {other:?}"),
    }
}

// ---------------------------------------------------------------- tables

fn t1_machine() -> String {
    let c = MachineConfig::origin2000();
    let rows = vec![
        vec!["CPUs per node".into(), format!("{}", c.cpus_per_node)],
        vec![
            "CPU cycle".into(),
            format!("{} ns (250 MHz R10000)", c.cycle_ns),
        ],
        vec!["Cache line".into(), format!("{} B", c.line_bytes)],
        vec![
            "Modelled cache".into(),
            format!("{} MB, {}-way", c.cache_bytes >> 20, c.cache_assoc),
        ],
        vec!["Cache hit".into(), format!("{} ns", c.lat_cache_hit)],
        vec!["Local memory".into(), format!("{} ns", c.lat_local_mem)],
        vec!["Per router hop".into(), format!("{} ns", c.lat_hop)],
        vec!["Directory op".into(), format!("{} ns", c.lat_directory)],
        vec![
            "Link bandwidth".into(),
            format!("{:.2} GB/s", c.bw_bytes_per_ns),
        ],
        vec!["Page size".into(), format!("{} KB", c.page_bytes >> 10)],
        vec![
            "MPI send+recv overhead".into(),
            format!("{} ns", c.mp_send_overhead + c.mp_recv_overhead),
        ],
        vec![
            "SHMEM put overhead".into(),
            format!("{} ns", c.shmem_put_overhead),
        ],
        vec![
            "Barrier cost per tree level".into(),
            format!("{} ns", c.sync_hop),
        ],
    ];
    format!(
        "T1: simulated Origin2000 machine parameters\n\n{}",
        render(&cells(&["parameter", "value"]), &rows)
    )
}

fn t2_effort() -> String {
    let t = effort_table();
    let rows: Vec<Vec<String>> = t
        .iter()
        .map(|r| {
            vec![
                format!("{} / {}", r.app.name(), r.model.name()),
                r.loc.to_string(),
            ]
        })
        .collect();
    format!(
        "T2: programming effort (effective source lines, simulator shims excluded)\n\n{}",
        render(&cells(&["application / model", "LoC"]), &rows)
    )
}

fn t3_partitioners() -> String {
    // Partition an adapted mesh (shock mid-domain) with every partitioner.
    let mut mesh = AdaptiveMesh::structured(32, 32, 1.0, 1.0);
    let cfg = AmrConfig {
        nx: 32,
        ny: 32,
        ..AmrConfig::default()
    };
    for step in 0..3 {
        mesh::indicator::adapt_step(
            &mut mesh,
            &cfg.shock(),
            cfg.front_time(step),
            cfg.refine_band,
            cfg.coarsen_band,
            cfg.max_level,
        );
    }
    let dual = dual_graph(&mesh);
    let pts: Vec<WeightedPoint> = dual
        .centroids
        .iter()
        .map(|c| WeightedPoint::new(c.x, c.y, 1.0))
        .collect();
    let lists: Vec<Vec<u32>> = (0..dual.len())
        .map(|v| dual.neighbors(v).to_vec())
        .collect();
    let g = CsrGraph::from_lists(&lists, vec![1.0; dual.len()]);
    let nparts = 16;
    let mut rows = Vec::new();
    let mut eval = |name: &str, parts: &[u32]| {
        rows.push(vec![
            name.to_string(),
            edge_cut(&g, parts).to_string(),
            x2(imbalance(&g.vwgt, parts, nparts)),
        ]);
    };
    eval("RCB", &rcb_partition(&pts, nparts));
    eval("Morton SFC", &morton_partition(&pts, nparts));
    eval("Hilbert SFC", &hilbert_partition(&pts, nparts));
    eval("Multilevel (MeTiS-lite)", &multilevel_partition(&g, nparts));
    // A stale partition: computed on the *base* mesh and inherited through
    // the adaptation (what a non-repartitioning code would run with) —
    // then repaired locally by diffusion instead of a global repartition.
    let base = AdaptiveMesh::structured(32, 32, 1.0, 1.0);
    let bdual = dual_graph(&base);
    let bpts: Vec<WeightedPoint> = bdual
        .centroids
        .iter()
        .map(|c| WeightedPoint::new(c.x, c.y, 1.0))
        .collect();
    let bparts = rcb_partition(&bpts, nparts);
    let mut bowner = vec![0u32; base.num_tris_total()];
    for (i, &t) in bdual.tris.iter().enumerate() {
        bowner[t as usize] = bparts[i];
    }
    // Inherit through the hierarchy: children take the parent's part.
    let mut stale: Vec<u32> = dual
        .tris
        .iter()
        .map(|&t| {
            let mut cur = t;
            loop {
                if (cur as usize) < bowner.len() {
                    return bowner[cur as usize];
                }
                cur = mesh.parent_of(cur).expect("new tris trace to base");
            }
        })
        .collect();
    eval("stale (inherited)", &stale);
    diffuse(&g, &mut stale, nparts, 1.05, 200);
    eval("stale + diffusion", &stale);
    format!(
        "T3: partitioner quality on an adapted mesh ({} active triangles, {} parts)\n\n{}",
        dual.len(),
        nparts,
        render(&cells(&["partitioner", "edge cut", "imbalance"]), &rows)
    )
}

fn t4_microbench() -> String {
    // The communication-parameter table every paper of the era includes,
    // *measured* on the simulated machine by running the primitives —
    // a self-validation that the runtimes charge what the model says.
    use mp::{MpWorld, RecvSpec};
    use parallel::Team;
    use sas::SasWorld;
    use shmem::SymWorld;

    let p = 16;
    let m = machine(p);
    let mut rows = Vec::new();

    // Two-sided round trip / 2 for varying sizes, ranks 0 <-> p-1.
    let mpw = MpWorld::new(Arc::clone(&m));
    for bytes in [8usize, 1024, 65_536] {
        let words = bytes / 8;
        let run = Team::new(Arc::clone(&m)).run(|ctx| {
            let reps = 10u64;
            let t0 = ctx.now();
            for _ in 0..reps {
                if ctx.pe() == 0 {
                    mpw.send_vec(ctx, p - 1, 1, vec![0u64; words]);
                    let _ = mpw.recv::<u64>(ctx, RecvSpec::from(p - 1, 2));
                } else if ctx.pe() == p - 1 {
                    let (_, _, d) = mpw.recv::<u64>(ctx, RecvSpec::from(0, 1));
                    mpw.send_vec(ctx, 0, 2, d);
                }
            }
            (ctx.now() - t0) / (2 * reps)
        });
        rows.push(vec![
            format!("MPI one-way, {bytes} B"),
            format!("{} ns", run.results[0]),
        ]);
    }

    // One-sided put / get for the same span.
    let shw = SymWorld::new(Arc::clone(&m));
    for bytes in [8usize, 1024, 65_536] {
        let words = bytes / 8;
        let run = Team::new(Arc::clone(&m)).run(|ctx| {
            let sym = shw.alloc::<u64>(ctx, words.max(1));
            let reps = 10u64;
            let data = vec![0u64; words];
            let t0 = ctx.now();
            if ctx.pe() == 0 {
                for _ in 0..reps {
                    sym.put(ctx, p - 1, 0, &data);
                }
            }
            let put_ns = (ctx.now() - t0) / reps;
            let t1 = ctx.now();
            if ctx.pe() == 0 {
                for _ in 0..reps {
                    let _ = sym.get(ctx, p - 1, 0, words.max(1));
                }
            }
            (put_ns, (ctx.now() - t1) / reps)
        });
        let (put_ns, get_ns) = run.results[0];
        rows.push(vec![
            format!("SHMEM put / get, {bytes} B"),
            format!("{put_ns} / {get_ns} ns"),
        ]);
    }

    // SAS remote line fetch: PE p-1 reads a line homed on node 0.
    let sasw = SasWorld::new(Arc::clone(&m));
    let run = Team::new(Arc::clone(&m)).run(|ctx| {
        let sh = sasw.alloc::<u64>(ctx, 1024);
        let mut pe = sasw.pe();
        if ctx.pe() == 0 {
            sh.home_pages(ctx, 0, 1024);
            pe.write(ctx, &sh, 0, 1);
        }
        sasw.barrier(ctx);
        let t0 = ctx.now();
        let _ = pe.read(ctx, &sh, 0);
        ctx.now() - t0
    });
    rows.push(vec![
        "CC-SAS remote dirty-line fetch".into(),
        format!("{} ns", run.results[p - 1]),
    ]);

    // Barrier costs vs team size.
    for pes in [4usize, 16, 64] {
        let mb = machine(pes);
        let run = Team::new(mb).run(|ctx| {
            let reps = 10u64;
            let t0 = ctx.now();
            for _ in 0..reps {
                ctx.barrier();
            }
            (ctx.now() - t0) / reps
        });
        rows.push(vec![
            format!("barrier, P={pes}"),
            format!("{} ns", run.results[0]),
        ]);
    }

    format!(
        "T4: measured communication parameters on the simulated Origin2000
(P={p}, ranks 0 and {} are {} hops apart)

{}
Measured by timing the actual runtime primitives in virtual time — the
microbenchmark table of the era, doubling as a model self-check.
",
        p - 1,
        m.hops_between(0, p - 1),
        render(&cells(&["operation", "cost"]), &rows)
    )
}

// ---------------------------------------------------------------- figures

fn do_sweep(app: App, quick: bool) -> SweepResult {
    sweep_models(
        app,
        &Model::ALL,
        &sweep_pes(quick),
        &nbody_cfg(quick),
        &amr_cfg(quick),
    )
}

fn f_speedup(app: App, quick: bool) -> String {
    let sweep = do_sweep(app, quick);
    let id = if app == App::NBody { "F1" } else { "F3" };
    let mut rows = Vec::new();
    for (pi, &p) in sweep.pes.iter().enumerate() {
        let mut row = vec![p.to_string()];
        for s in &sweep.series {
            row.push(ms(s.runs[pi].sim_time));
        }
        for s in &sweep.series {
            row.push(x2(s.speedups()[pi]));
        }
        rows.push(row);
    }
    let header = cells(&[
        "P",
        "MPI ms",
        "SHMEM ms",
        "CC-SAS ms",
        "MPI spd",
        "SHMEM spd",
        "CC-SAS spd",
    ]);
    let chart_series: Vec<(&str, Vec<f64>)> = sweep
        .series
        .iter()
        .map(|s| (s.model.name(), s.speedups()))
        .collect();
    format!(
        "{id}: {} simulated execution time and speedup vs processors\n\n{}\n{}",
        app.name(),
        render(&header, &rows),
        line_chart(
            &format!("{} speedup", app.name()),
            &sweep.pes,
            &chart_series,
            12
        )
    )
}

fn f_breakdown(app: App, quick: bool) -> String {
    let id = if app == App::NBody { "F2" } else { "F4" };
    let p = if quick { 8 } else { 32 };
    let m = machine(p);
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let runs: Vec<_> = Model::ALL
        .iter()
        .map(|&model| apps::run_app(Arc::clone(&m), app, model, &nb, &am))
        .collect();
    let labels: Vec<&str> = Model::ALL.iter().map(|m| m.name()).collect();
    let fractions: Vec<Vec<f64>> = runs
        .iter()
        .map(|r| {
            let (b, l, rm, s) = r.breakdown().fractions();
            vec![b, l, rm, s]
        })
        .collect();
    let mut rows = Vec::new();
    for (r, model) in runs.iter().zip(&labels) {
        let bd = r.breakdown();
        rows.push(vec![
            model.to_string(),
            ms(r.sim_time),
            ms(bd.busy / p as u64),
            ms(bd.local / p as u64),
            ms(bd.remote / p as u64),
            ms(bd.sync / p as u64),
        ]);
    }
    format!(
        "{id}: {} execution-time breakdown at P={p} (per-PE average, ms)\n\n{}\n{}",
        app.name(),
        render(
            &cells(&["model", "total", "busy", "local", "remote", "sync"]),
            &rows
        ),
        stacked_bars(
            "time fractions",
            &labels,
            &["busy", "local", "remote", "sync"],
            &fractions,
            48
        )
    )
}

fn f5_comm_volume(quick: bool) -> String {
    let mut out = String::from("F5: communication volume vs processors (KB total)\n");
    for app in [App::NBody, App::Amr] {
        let sweep = do_sweep(app, quick);
        out.push('\n');
        out.push_str(&format!("{}:\n", app.name()));
        let mut rows = Vec::new();
        for (pi, &p) in sweep.pes.iter().enumerate() {
            let mut row = vec![p.to_string()];
            for s in &sweep.series {
                let c = &s.runs[pi].counters;
                let line = MachineConfig::origin2000().line_bytes;
                let bytes = c.explicit_comm_bytes() + c.implicit_comm_bytes(line);
                row.push(format!("{}", bytes / 1024));
            }
            rows.push(row);
        }
        out.push_str(&render(&cells(&["P", "MPI", "SHMEM", "CC-SAS"]), &rows));
    }
    out.push_str(
        "\nMPI/SHMEM volume is explicit message/put/get payload; CC-SAS volume is\nremote cache-line fills (misses × 128 B).\n",
    );
    out
}

fn f6_balance(quick: bool) -> String {
    let cfg = amr_cfg(quick);
    let p = if quick { 8 } else { 16 };
    let with = apps::amr_common::balance_series(&cfg, p);
    let no_cfg = AmrConfig {
        use_remap: false,
        ..cfg.clone()
    };
    let without = apps::amr_common::balance_series(&no_cfg, p);
    let mut rows = Vec::new();
    for (step, (w, n)) in with.iter().zip(&without).enumerate() {
        rows.push(vec![
            step.to_string(),
            x2(w.0),
            x2(w.1),
            format!("{:.0}", w.2),
            format!("{:.0}", w.3),
            format!("{:.0}", n.2),
            format!("{:.0}", n.3),
        ]);
    }
    format!(
        "F6: AMR load balance and data movement per adaptation step (P={p})\n\n{}\nimb-before: imbalance inherited after adaptation; imb-after: after\nrepartitioning. TotalV/MaxV: elements moved (PLUM metrics), with remapping\nvs without.\n",
        render(
            &cells(&[
                "step",
                "imb-before",
                "imb-after",
                "TotalV(remap)",
                "MaxV(remap)",
                "TotalV(none)",
                "MaxV(none)"
            ]),
            &rows
        )
    )
}

fn f7_traffic_structure(quick: bool) -> String {
    let p = if quick { 8 } else { 16 };
    let m = machine(p);
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let mut out = String::from(
        "F7: traffic structure at P=16 — message-size histogram (MPI) and\none-sided operation counts (SHMEM)\n",
    );
    for app in [App::NBody, App::Amr] {
        let mp = apps::run_app(Arc::clone(&m), app, Model::Mp, &nb, &am);
        let sh = apps::run_app(Arc::clone(&m), app, Model::Shmem, &nb, &am);
        out.push('\n');
        out.push_str(&format!("{}:\n", app.name()));
        let h = mp.counters.msg_size_hist;
        let rows = vec![
            vec!["MPI messages".into(), mp.counters.msgs_sent.to_string()],
            vec!["  <64 B".into(), h[0].to_string()],
            vec!["  64-511 B".into(), h[1].to_string()],
            vec!["  512 B-4 KB".into(), h[2].to_string()],
            vec!["  4-32 KB".into(), h[3].to_string()],
            vec!["  >32 KB".into(), h[4].to_string()],
            vec!["SHMEM puts".into(), sh.counters.puts.to_string()],
            vec!["SHMEM gets".into(), sh.counters.gets.to_string()],
            vec!["SHMEM atomics".into(), sh.counters.amos.to_string()],
        ];
        out.push_str(&render(&cells(&["metric", "count"]), &rows));
    }
    out
}

fn f8_cache(quick: bool) -> String {
    let mut out = String::from("F8: CC-SAS cache behaviour vs processors\n");
    for app in [App::NBody, App::Amr] {
        let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
        out.push('\n');
        out.push_str(&format!("{}:\n", app.name()));
        let mut rows = Vec::new();
        for &p in &sweep_pes(quick) {
            let r = apps::run_app(machine(p), app, Model::Sas, &nb, &am);
            rows.push(vec![
                p.to_string(),
                format!("{:.4}", r.counters.miss_ratio()),
                format!("{:.3}", r.counters.remote_miss_fraction()),
                r.counters.invalidations.to_string(),
            ]);
        }
        out.push_str(&render(
            &cells(&["P", "miss ratio", "remote fraction", "invalidations"]),
            &rows,
        ));
    }
    out
}

fn f9_critical_path(quick: bool) -> String {
    // Event tracing plus critical-path analysis: where does the end-to-end
    // simulated time actually go, for each application under each model?
    // Traces are archived as Perfetto-loadable Chrome JSON next to the
    // text outputs.
    let p = if quick { 8 } else { 32 };
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let out_dir = std::env::var("O2K_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let _ = std::fs::create_dir_all(&out_dir);

    let was_enabled = o2k_trace::enabled();
    o2k_trace::set_enabled(true);

    let mut out = format!(
        "F9: event traces and critical-path analysis at P={p}\n\
         (open the archived .trace.json files in https://ui.perfetto.dev)\n"
    );
    for app in [App::Amr, App::NBody] {
        for model in Model::ALL {
            let r = apps::run_app(machine(p), app, model, &nb, &am);
            let trace = r.trace.as_ref().expect("tracing was enabled");
            let slug = format!(
                "f9_{}_{}",
                app.name().to_lowercase().replace('-', ""),
                model.name().to_lowercase().replace(['-', '+'], "")
            );
            let path = format!("{out_dir}/{slug}.trace.json");
            std::fs::write(&path, o2k_trace::chrome::to_chrome_json(trace))
                .expect("write trace json");
            let stats = o2k_trace::critpath::critical_path(trace);
            out.push_str(&format!(
                "\n--- {} / {} — {} events across {} PEs, archived to {path}\n",
                app.name(),
                model.name(),
                trace.total_events(),
                trace.pes(),
            ));
            out.push_str(&o2k_trace::critpath::render_table(&stats));
            // One terminal timeline for the headline case (AMR under MPI:
            // the send/recv storms are visible to the naked eye).
            if matches!((app, model), (App::Amr, Model::Mp)) {
                out.push_str(&o2k_trace::chrome::text_timeline(trace, 72));
            }
        }
    }

    // Per-adaptation-step communication deltas (Counters::diff): rerun the
    // MPI AMR with a growing step budget and difference the running totals.
    // Run on a contention-enabled machine so the network-queueing column is
    // live — it attributes queueing delay to the step that incurred it.
    out.push_str(
        "\nAMR / MPI communication per adaptation step (cumulative-run deltas,\ncontention model on):\n",
    );
    let mut rows = Vec::new();
    let mut prev = machine::Counters::new();
    let mut phase_report = String::new();
    for k in 1..=am.steps {
        let cfg = apps::AmrConfig {
            steps: k,
            ..am.clone()
        };
        let r = apps::amr_mp::run(machine_queued(p), &cfg);
        // These are totals from *separate* runs, not snapshots of one run:
        // the k-step run's final sync moves different-sized messages than
        // the (k-1)-step run's, so only the aggregate fields printed here
        // are monotone across the series (Counters::diff is for same-run
        // snapshots and insists on full monotonicity).
        rows.push(vec![
            k.to_string(),
            r.counters
                .msgs_sent
                .saturating_sub(prev.msgs_sent)
                .to_string(),
            format!(
                "{}",
                r.counters.msg_bytes.saturating_sub(prev.msg_bytes) / 1024
            ),
            r.counters
                .barriers
                .saturating_sub(prev.barriers)
                .to_string(),
            format!(
                "{}",
                r.counters.net_queued_ns.saturating_sub(prev.net_queued_ns) / 1000
            ),
        ]);
        prev = r.counters;
        if k == am.steps {
            phase_report = r.net_report.clone().expect("queued run renders hotspots");
        }
    }
    out.push_str(&render(
        &cells(&["step", "msgs", "KB", "barriers", "net queue µs"]),
        &rows,
    ));
    // Per-phase link hotspots from the final run: the applications mark
    // sync/adapt/remap/solve, so queueing delay is attributed to the
    // algorithmic phase that incurred it.
    out.push_str(&format!(
        "\nAMR / MPI link hotspots by phase ({}-step run):\n{phase_report}",
        am.steps
    ));

    if !was_enabled {
        o2k_trace::set_enabled(false);
    }
    // The runs above also pushed their traces to the process-wide sink;
    // they are archived already, so drop them.
    let _ = o2k_trace::sink_drain();
    out
}

// -------------------------------------------------------------- ablations

fn a1_paging(quick: bool) -> String {
    let p = if quick { 8 } else { 16 };
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let mut rows = Vec::new();
    for (name, policy) in [
        ("first-touch", PagePolicy::FirstTouch),
        ("round-robin", PagePolicy::RoundRobin),
    ] {
        let n = apps::nbody_sas::run_with_paging(machine(p), &nb, policy);
        let a = apps::amr_sas::run_with_paging(machine(p), &am, policy);
        rows.push(vec![
            name.to_string(),
            ms(n.sim_time),
            format!("{:.3}", n.counters.remote_miss_fraction()),
            ms(a.sim_time),
            format!("{:.3}", a.counters.remote_miss_fraction()),
        ]);
    }
    format!(
        "A1: CC-SAS page-placement ablation at P={p}\n\n{}\nFirst touch matters where ownership is address-contiguous (AMR); the\nirregular N-body working set defeats both policies equally (the SPLASH-era\nfinding).\n",
        render(
            &cells(&["paging", "N-body ms", "N-body remote", "AMR ms", "AMR remote"]),
            &rows
        )
    )
}

fn a2_remap(quick: bool) -> String {
    let p = if quick { 8 } else { 16 };
    let base = amr_cfg(quick);
    let mut rows = Vec::new();
    for (name, use_remap) in [("with PLUM remap", true), ("without remap", false)] {
        let cfg = AmrConfig {
            use_remap,
            ..base.clone()
        };
        let r = apps::amr_mp::run(machine(p), &cfg);
        let moved: f64 = apps::amr_common::balance_series(&cfg, p)
            .iter()
            .map(|s| s.2)
            .sum();
        rows.push(vec![
            name.to_string(),
            ms(r.sim_time),
            format!("{moved:.0}"),
        ]);
    }
    format!(
        "A2: PLUM remapping ablation (MPI AMR, P={p})\n\n{}",
        render(
            &cells(&["configuration", "time ms", "elements moved"]),
            &rows
        )
    )
}

fn a3_partitioning(quick: bool) -> String {
    // Load-balance quality of costzones (SAS) vs ORB (MP): spread of busy
    // time across PEs.
    let p = if quick { 8 } else { 16 };
    let nb = nbody_cfg(quick);
    let am = amr_cfg(quick);
    let mut rows = Vec::new();
    for model in [Model::Sas, Model::Mp] {
        let r = apps::run_app(machine(p), App::NBody, model, &nb, &am);
        let busy: Vec<f64> = r.per_pe.iter().map(|b| b.busy as f64).collect();
        let max = busy.iter().cloned().fold(0.0f64, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        let scheme = if model == Model::Sas {
            "costzones"
        } else {
            "ORB"
        };
        rows.push(vec![
            format!("{} ({})", model.name(), scheme),
            ms(r.sim_time),
            x2(max / mean),
        ]);
    }
    format!(
        "A3: N-body work partitioning — costzones vs ORB at P={p}\n\n{}\nbusy max/mean = 1.00 is perfect compute balance.\n",
        render(&cells(&["model (scheme)", "time ms", "busy max/mean"]), &rows)
    )
}

fn a4_numa_sensitivity(quick: bool) -> String {
    // Extension beyond the paper: how does the model ranking depend on the
    // machine's NUMA remoteness? Scale the per-hop latency and re-run the
    // AMR comparison at fixed P.
    let p = if quick { 8 } else { 16 };
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let base = MachineConfig::origin2000();
    let mut rows = Vec::new();
    for factor in [0u64, 1, 4, 16] {
        let cfg = MachineConfig {
            lat_hop: base.lat_hop * factor,
            ..base.clone()
        };
        let m = Arc::new(Machine::new(p, cfg));
        let mut row = vec![format!("{}x ({} ns/hop)", factor, base.lat_hop * factor)];
        for model in Model::ALL {
            let r = apps::run_app(Arc::clone(&m), App::Amr, model, &nb, &am);
            row.push(ms(r.sim_time));
        }
        rows.push(row);
    }
    format!(
        "A4 (extension): NUMA remoteness sensitivity — AMR at P={p}, scaling the
per-hop network latency

{}
MPI's cost is dominated by per-message *software* overhead, so it is nearly
flat in hop latency. The fine-grained models — SHMEM puts and CC-SAS line
fills — are the latency-sensitive ones: their advantage is largest on a
flat machine (0x) and erodes as remoteness grows, until at 16x the ranking
*inverts* and bulk message passing wins. This is precisely the mechanism
behind the follow-up papers' cluster results: take away cheap hardware
fine-grained access and MPI becomes competitive again.
",
        render(
            &cells(&["hop latency", "MPI ms", "SHMEM ms", "CC-SAS ms"]),
            &rows
        )
    )
}

fn a5_hybrid(quick: bool) -> String {
    // Extension: the follow-up papers' hybrid (MP between nodes, SAS
    // within) against the three pure models, on the stock machine and on a
    // deep-NUMA variant where fine-grained remote access is expensive.
    let p = if quick { 8 } else { 16 };
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let mut rows = Vec::new();
    for app in [App::NBody, App::Amr] {
        for (label, cfg) in [
            ("Origin2000", MachineConfig::origin2000()),
            ("cluster of SMPs", MachineConfig::cluster_of_smps()),
        ] {
            let m = Arc::new(Machine::new(p, cfg));
            let mut row = vec![format!("{} / {}", app.name(), label)];
            for model in Model::WITH_HYBRID {
                let r = apps::run_app(Arc::clone(&m), app, model, &nb, &am);
                row.push(ms(r.sim_time));
            }
            rows.push(row);
        }
    }
    // Re-run the same four cells on the contended-resource fabric: every
    // transfer now also arbitrates for its node buses and hub ports, which
    // penalises the fine-grained models' many small transfers more than the
    // hybrid's batched leader messages.
    let mut frows = Vec::new();
    for app in [App::NBody, App::Amr] {
        for (label, cfg) in [
            ("Origin2000", MachineConfig::origin2000()),
            ("cluster of SMPs", MachineConfig::cluster_of_smps()),
        ] {
            let m = Arc::new(Machine::new(
                p,
                MachineConfig {
                    contention: machine::ContentionMode::Fabric,
                    ..cfg
                },
            ));
            let mut row = vec![format!("{} / {}", app.name(), label)];
            for model in Model::WITH_HYBRID {
                let r = apps::run_app(Arc::clone(&m), app, model, &nb, &am);
                row.push(ms(r.sim_time));
            }
            frows.push(row);
        }
    }
    format!(
        "A5 (extension): hybrid MPI+SAS vs the pure models at P={p}\n\n{}\nThe hybrid keeps all data in per-node (page-aligned) shared segments and\nbatches every cross-node byte into leader messages — zero cross-node\ncoherence by construction. It is the fastest model in three of the four\ncells: both applications on the Origin2000, and AMR on the cluster, where\nthe pure fine-grained models are 2-4x slower. Only cluster N-body goes to\npure MPI, whose per-PE essential-tree exchange avoids the hybrid's\nnode-leader serialisation — the intra-node Amdahl effect the follow-up\npapers also observed.\n\nSame cells on the contended-resource fabric (links + node buses + hub\nports, ContentionMode::Fabric):\n\n{}\nBus and hub arbitration taxes per-transfer models hardest; the ranking\nabove is unchanged, but the fine-grained columns move more than the\nhybrid's, widening its margin.\n",
        render(
            &cells(&["workload / machine", "MPI ms", "SHMEM ms", "CC-SAS ms", "MPI+SAS ms"]),
            &rows
        ),
        render(
            &cells(&["workload / machine", "MPI ms", "SHMEM ms", "CC-SAS ms", "MPI+SAS ms"]),
            &frows
        )
    )
}

fn a6_self_schedule(quick: bool) -> String {
    // Ablation: the classic SAS self-scheduled loop (chunks claimed from a
    // shared counter) vs the static block schedule, for the CC-SAS AMR.
    let p = if quick { 8 } else { 16 };
    let base = amr_cfg(quick);
    let mut rows = Vec::new();
    for (name, dynamic) in [
        ("static blocks", false),
        ("self-scheduled (chunk 32)", true),
    ] {
        let cfg = AmrConfig {
            sas_self_schedule: dynamic,
            ..base.clone()
        };
        // Pin the claim order with the deterministic scheduler so the row
        // is exactly reproducible (claiming is a genuine fetch-add race;
        // see `apps::amr_sas`).
        let r = apps::amr_sas::run_with(
            machine(p),
            &cfg,
            PagePolicy::FirstTouch,
            Some(parallel::SchedPolicy::Det),
        );
        let busy: Vec<f64> = r.per_pe.iter().map(|b| b.busy as f64).collect();
        let max = busy.iter().cloned().fold(0.0f64, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        rows.push(vec![
            name.to_string(),
            ms(r.sim_time),
            x2(max / mean),
            r.counters.invalidations.to_string(),
            format!("{:.3}", r.counters.remote_miss_fraction()),
        ]);
    }
    format!(
        "A6 (ablation): CC-SAS sweep scheduling at P={p}\n\n{}\nWith near-uniform per-element work, self-scheduling buys no balance (both\nschedules sit at busy max/mean ~1.0) and pays extra invalidation\ntraffic for the shared cursor line — so the static block schedule is the\nright default, exactly the trade-off the SPLASH-era codes tuned by hand.\n(Chunks are claimed by real fetch-adds under the deterministic\nvirtual-time schedule; `repro a6 --sched os` shows the free-running\nvariant. See `apps::amr_sas` and S1.)\n",
        render(
            &cells(&["schedule", "time ms", "busy max/mean", "invalidations", "remote frac"]),
            &rows
        )
    )
}

fn s1_scheduler_policies(quick: bool) -> String {
    use parallel::SchedPolicy;
    // Scheduler study: the same self-scheduled CC-SAS AMR under every
    // scheduling policy. Deterministic runs repeat bitwise (same schedule
    // fingerprint, same times); exploration seeds pick distinct
    // interleavings; the physics checksum never moves.
    let p = if quick { 4 } else { 8 };
    let cfg = AmrConfig {
        sas_self_schedule: true,
        ..AmrConfig::small()
    };
    let go = |policy: SchedPolicy| {
        apps::amr_sas::run_with(machine(p), &cfg, PagePolicy::FirstTouch, Some(policy))
    };
    let det_a = go(SchedPolicy::Det);
    let det_b = go(SchedPolicy::Det);
    assert_eq!(det_a.sim_time, det_b.sim_time, "det must repeat bitwise");
    assert_eq!(det_a.sched, det_b.sched, "det must repeat the schedule");
    let mut rows = Vec::new();
    let mut fingerprints = Vec::new();
    let mut checksums = Vec::new();
    for (name, r) in [
        ("det (run 1)", &det_a),
        ("det (run 2)", &det_b),
        ("explore:1", &go(SchedPolicy::Explore { seed: 1 })),
        ("explore:2", &go(SchedPolicy::Explore { seed: 2 })),
        (
            "bp:1:64",
            &go(SchedPolicy::BoundedPreempt {
                seed: 1,
                budget: 64,
            }),
        ),
    ] {
        let s = r.sched.expect("cooperative policies report stats");
        fingerprints.push(s.fingerprint);
        checksums.push(r.checksum);
        rows.push(vec![
            name.to_string(),
            ms(r.sim_time),
            r.counters.sched_handoffs.to_string(),
            format!("{:016x}", s.fingerprint),
        ]);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "the answer must be schedule-independent"
    );
    let distinct = {
        let mut f = fingerprints.clone();
        f.sort_unstable();
        f.dedup();
        f.len()
    };
    format!(
        "S1: scheduling policies on self-scheduled CC-SAS AMR at P={p}\n\n{}\nThe two det rows are bitwise identical (one schedule, one fingerprint);\nthe exploration rows each replay a distinct seeded interleaving\n({distinct} distinct fingerprints across {total} cooperative runs) while\nthe physics checksum is identical in every row — the Jacobi answer is\nbarrier-separated, only times and traffic move with the schedule.\n",
        render(
            &cells(&["policy", "time ms", "handoffs", "schedule fingerprint"]),
            &rows
        ),
        total = fingerprints.len(),
    )
}

fn n1_contention(quick: bool) -> String {
    use machine::ContentionMode;
    use mp::MpWorld;
    use parallel::Team;
    use sas::SasWorld;

    // Contention sweep: the same traffic on the analytic (uncontended)
    // machine and on the queueing interconnect model. Each transfer is
    // routed hop-by-hop over the hypercube; a busy link delays it, so
    // concentrated traffic pays where the analytic model charges a
    // load-independent latency.
    let pes: Vec<usize> = if quick {
        vec![4, 8]
    } else {
        vec![4, 8, 16, 32, 64]
    };
    let mach = |p: usize, mode: ContentionMode| -> Arc<Machine> {
        match mode {
            ContentionMode::Off => machine(p),
            ContentionMode::Queued => machine_queued(p),
            ContentionMode::Fabric => machine_fabric(p),
        }
    };

    // (a) MPI personalised all-to-all: every PE sends a chunk to every
    // other PE — the bisection-stressing pattern.
    let words = if quick { 512 } else { 2048 };
    let alltoall = |p: usize, mode: ContentionMode| {
        let m = mach(p, mode);
        let mpw = MpWorld::new(Arc::clone(&m));
        Team::new(Arc::clone(&m)).run(move |ctx| {
            let sends: Vec<Vec<u64>> = (0..p).map(|_| vec![7u64; words]).collect();
            let r = mpw.alltoallv(ctx, sends);
            r.len() as u64
        })
    };

    // (b) CC-SAS hotspot: every PE reads lines homed (and dirtied) on
    // node 0, so every fill converges on node 0's router ports.
    let lines = 256usize; // 16 u64 per 128 B line
    let hotspot = |p: usize, mode: ContentionMode| {
        let m = mach(p, mode);
        let sasw = SasWorld::new(Arc::clone(&m));
        Team::new(Arc::clone(&m)).run(move |ctx| {
            let sh = sasw.alloc::<u64>(ctx, lines * 16);
            let mut pe = sasw.pe();
            if ctx.pe() == 0 {
                sh.home_pages(ctx, 0, lines * 16);
                for l in 0..lines {
                    pe.write(ctx, &sh, l * 16, l as u64);
                }
            }
            sasw.barrier(ctx);
            let mut acc = 0u64;
            for l in 0..lines {
                acc = acc.wrapping_add(pe.read(ctx, &sh, l * 16));
            }
            acc
        })
    };

    let mut out =
        String::from("N1: interconnect contention sweep — analytic (off) vs queueing (queued)\n");
    let mut queued_series: Vec<(&str, Vec<u64>)> = Vec::new();
    let a2a_label = format!("MPI all-to-all, {} B chunks", words * 8);
    let hot_label = format!("CC-SAS hotspot, {lines} lines homed on node 0");
    for (name, bench) in [
        (
            a2a_label.as_str(),
            &alltoall as &dyn Fn(usize, ContentionMode) -> parallel::TeamRun<u64>,
        ),
        (hot_label.as_str(), &hotspot),
    ] {
        let mut rows = Vec::new();
        let mut qns = Vec::new();
        for &p in &pes {
            let off = bench(p, ContentionMode::Off);
            let q = bench(p, ContentionMode::Queued);
            assert!(off.net.is_none(), "off mode must not build a NetSim");
            let stats = q
                .net
                .as_ref()
                .expect("queued mode reports NetStats")
                .stats();
            assert!(
                q.sim_time() >= off.sim_time(),
                "{name}: queueing can only add delay (P={p})"
            );
            qns.push(stats.queued_ns);
            rows.push(vec![
                p.to_string(),
                ms(off.sim_time()),
                ms(q.sim_time()),
                x2(q.sim_time() as f64 / off.sim_time().max(1) as f64),
                format!("{}", stats.queued_ns / 1000),
                stats.active_links.to_string(),
                format!("{}", stats.max_link_queued_ns / 1000),
            ]);
        }
        // The acceptance property: queueing delay grows with P.
        assert!(
            qns.windows(2).all(|w| w[0] <= w[1]) && qns[qns.len() - 1] > qns[0],
            "{name}: total queueing delay must grow with P ({qns:?})"
        );
        out.push('\n');
        out.push_str(&format!("{name}:\n"));
        out.push_str(&render(
            &cells(&[
                "P",
                "off ms",
                "queued ms",
                "slowdown",
                "queue µs",
                "links hit",
                "worst link µs",
            ]),
            &rows,
        ));
        queued_series.push((name, qns));
    }
    let chart: Vec<(&str, Vec<f64>)> = queued_series
        .iter()
        .map(|(n, v)| (*n, v.iter().map(|&x| x as f64 / 1000.0).collect()))
        .collect();
    out.push('\n');
    out.push_str(&line_chart("total queueing delay (µs)", &pes, &chart, 10));

    // (c) Both applications under all three models, off vs queued, at a
    // fixed P: how much does the analytic model understate by ignoring
    // contention on real adaptive traffic?
    let p = if quick { 8 } else { 32 };
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let mut rows = Vec::new();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let off = apps::run_app(machine(p), app, model, &nb, &am);
            let q = apps::run_app(machine_queued(p), app, model, &nb, &am);
            let s = q.net.expect("queued run reports NetStats");
            rows.push(vec![
                format!("{} / {}", app.name(), model.name()),
                ms(off.sim_time),
                ms(q.sim_time),
                x2(q.sim_time as f64 / off.sim_time.max(1) as f64),
                format!("{}", s.queued_ns / 1000),
            ]);
        }
    }
    out.push_str(&format!(
        "\nApplications at P={p}, off vs queued:\n{}",
        render(
            &cells(&["workload", "off ms", "queued ms", "slowdown", "queue µs"]),
            &rows
        )
    ));

    // Hotspot anatomy at the largest swept P: per-link occupancy report and
    // utilization histogram from the CC-SAS hotspot run.
    let top_p = *pes.last().expect("sweep is non-empty");
    let q = hotspot(top_p, ContentionMode::Queued);
    let net = q.net.as_ref().expect("queued mode reports NetStats");
    let hist = net.utilization_hist(q.sim_time());
    out.push_str(&format!(
        "\nCC-SAS hotspot anatomy at P={top_p}:\n{}\nlink utilization histogram (busy fraction deciles, links per bin):\n  {:?}\n\
         The hot links are node 0's router ports — every fill crosses them,\n\
         so their occupancy, not the per-hop latency, sets the service rate.\n",
        net.hotspot_report(5),
        hist,
    ));

    // (d) The same applications on the full resource fabric (links + node
    // buses + hub ports): how much the link-only queueing model still
    // understates, and where the extra delay accrues by resource kind.
    let mut rows = Vec::new();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let q = apps::run_app(machine_queued(p), app, model, &nb, &am);
            let f = apps::run_app(machine_fabric(p), app, model, &nb, &am);
            assert_eq!(f.checksum, q.checksum, "fabric changed physics");
            let s = f.net.as_ref().expect("fabric run reports NetStats");
            assert!(
                s.bus.transfers > 0,
                "fabric runs must arbitrate for node buses"
            );
            rows.push(vec![
                format!("{} / {}", app.name(), model.name()),
                ms(q.sim_time),
                ms(f.sim_time),
                x2(f.sim_time as f64 / q.sim_time.max(1) as f64),
                format!("{}", s.queued_ns / 1000),
                format!("{}", s.bus.queued_ns / 1000),
                format!("{}", s.hub.queued_ns / 1000),
            ]);
        }
    }
    out.push_str(&format!(
        "\nApplications at P={p}, link-only queueing vs the full resource fabric\n\
         (fabric adds per-node shared-bus and per-router hub arbitration):\n{}",
        render(
            &cells(&[
                "workload",
                "queued ms",
                "fabric ms",
                "fabric x",
                "link q µs",
                "bus q µs",
                "hub q µs",
            ]),
            &rows
        )
    ));
    out
}

fn n2_fault(quick: bool) -> String {
    use machine::{ContentionMode, FaultMode};
    use parallel::SchedPolicy;

    // Fault-injection sweep: the same workloads on the queueing
    // interconnect, healthy vs one degraded link vs one killed router
    // port. Degrade multiplies a link's service time; kill removes a
    // router edge and every transfer that would cross it detours over the
    // surviving hypercube edges. P must give the routers at least two
    // dimensions or the cut has no detour (quick keeps P=16, not 8).
    let p = if quick { 16 } else { 32 };
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    let degraded_spec = "plan:down0:deg8";
    let faulted_spec = "plan:down0:deg8;r0d0:kill";
    let faulty = |p: usize, spec: &str| -> Arc<Machine> {
        Arc::new(Machine::new(
            p,
            MachineConfig {
                contention: ContentionMode::Queued,
                fault: FaultMode::parse(spec).expect("valid fault spec"),
                ..MachineConfig::origin2000()
            },
        ))
    };

    let mut out = format!(
        "N2: graceful degradation under interconnect faults at P={p}\n\
         (queueing model on; slow = {degraded_spec}: node 0's inbound\n\
         bristle port serves 8x slower; faulted = {faulted_spec}:\n\
         the slow link plus a cut on router 0's dim-0 port, around which\n\
         traffic detours over the surviving hypercube edges)\n\n"
    );
    let mut rows = Vec::new();
    let mut amr_retained = [0.0f64; 3];
    let mut degraded_report = String::new();
    let mut amr_mp_times = (0u64, 0u64);
    let mut amr_mp_checksum = 0.0f64;
    // Pin the deterministic schedule: a fault comparison under free OS
    // interleaving confounds the fault's cost with schedule noise.
    let det = Some(SchedPolicy::Det);
    for app in [App::Amr, App::NBody] {
        for (mi, &model) in Model::ALL.iter().enumerate() {
            let healthy = apps::run_app_sched(machine_queued(p), app, model, &nb, &am, det);
            let deg = apps::run_app_sched(faulty(p, degraded_spec), app, model, &nb, &am, det);
            let dead = apps::run_app_sched(faulty(p, faulted_spec), app, model, &nb, &am, det);
            // Graceful degradation: faults move time and traffic, never
            // the physics.
            assert_eq!(deg.checksum, healthy.checksum, "degrade changed physics");
            assert_eq!(dead.checksum, healthy.checksum, "dead link changed physics");
            let ds = dead.net.as_ref().expect("queued run reports NetStats");
            assert_eq!(ds.dead_links, 1, "the kill must register");
            assert_eq!(ds.degraded_links, 1, "the degrade must register");
            assert!(
                ds.detoured_transfers > 0,
                "{} / {}: traffic must detour around the cut",
                app.name(),
                model.name()
            );
            rows.push(vec![
                format!("{} / {}", app.name(), model.name()),
                ms(healthy.sim_time),
                ms(deg.sim_time),
                x2(deg.sim_time as f64 / healthy.sim_time.max(1) as f64),
                ms(dead.sim_time),
                x2(dead.sim_time as f64 / healthy.sim_time.max(1) as f64),
                ds.detoured_transfers.to_string(),
            ]);
            if app == App::Amr {
                amr_retained[mi] = healthy.sim_time as f64 / dead.sim_time.max(1) as f64;
                if model == Model::Mp {
                    degraded_report = deg.net_report.clone().expect("queued run renders hotspots");
                    amr_mp_times = (healthy.sim_time, deg.sim_time);
                    amr_mp_checksum = healthy.checksum;
                }
            }
        }
    }
    out.push_str(&render(
        &cells(&[
            "workload",
            "healthy ms",
            "slow ms",
            "slow x",
            "slow+dead ms",
            "slow+dead x",
            "detours",
        ]),
        &rows,
    ));

    // The acceptance property: bulk message passing retains more of its
    // healthy throughput across the faulted fabric (one slow link, one
    // dead link) than the cache-coherent SAS, whose fine-grained line
    // fills pay the slow port and the detour on every miss.
    let (mp_ret, sh_ret, sas_ret) = (amr_retained[0], amr_retained[1], amr_retained[2]);
    assert!(
        mp_ret > sas_ret,
        "MP should retain more throughput than CC-SAS under the slow+dead links \
         ({mp_ret:.3} vs {sas_ret:.3})"
    );
    out.push_str(&format!(
        "\nAMR throughput retained under the slow+dead links (healthy/faulted time):\n  \
         MPI {mp_ret:.2}, SHMEM {sh_ret:.2}, CC-SAS {sas_ret:.2} — bulk messages amortise the\n  \
         slow port and the detour that the fine-grained models pay per transfer.\n"
    ));

    // Link hotspots of the degraded AMR / MPI run: the slow link is
    // annotated in place, per phase.
    out.push_str(&format!(
        "\nAMR / MPI link hotspots with the degraded bristle:\n{degraded_report}"
    ));

    // Heal: the degraded bristle is restored partway through the run
    // (`plan:down0:deg8;down0:heal@<ns>`). Throughput must recover — the
    // healed run lands strictly between the healthy and the permanently
    // degraded run — and the physics never moves.
    let (healthy_t, deg_t) = amr_mp_times;
    let heal_at = deg_t / 4;
    let healed_spec = format!("plan:down0:deg8;down0:heal@{heal_at}");
    let healed = apps::run_app_sched(faulty(p, &healed_spec), App::Amr, Model::Mp, &nb, &am, det);
    assert_eq!(healed.checksum, amr_mp_checksum, "heal changed physics");
    let hs = healed.net.as_ref().expect("queued run reports NetStats");
    assert_eq!(
        hs.degraded_links, 0,
        "a terminally healed link must not count as degraded"
    );
    assert!(
        healed.sim_time < deg_t,
        "healing the bristle mid-run must recover throughput \
         (healed {} vs degraded {deg_t})",
        healed.sim_time
    );
    assert!(
        healed.sim_time >= healthy_t,
        "a run degraded until t={heal_at} cannot beat the healthy run"
    );
    out.push_str(&format!(
        "\nHeal ({healed_spec}): AMR / MPI with the slow bristle restored mid-run:\n  \
         healthy {}, degraded {}, healed {} — throughput recovers once the\n  \
         port returns to full service; the hotspot report marks the link [healed].\n",
        ms(healthy_t),
        ms(deg_t),
        ms(healed.sim_time),
    ));
    out
}

fn n3_bus_saturation(quick: bool) -> String {
    use machine::ContentionMode;
    use parallel::SchedPolicy;

    // Bus-saturation sweep: fix the PE count and fatten the nodes. More
    // CPUs per node means more PEs arbitrating for each node's shared
    // SysAD bus and each router's hub port — the cluster-of-SMPs failure
    // mode the follow-up papers measured. Efficiency compares the analytic
    // (off) and fabric runs *at the same topology*, so the column isolates
    // pure resource contention from path-length effects.
    let p = if quick { 8 } else { 16 };
    let cpns: &[usize] = if quick { &[2, 4, 8] } else { &[2, 4, 8, 16] };
    let (nb, am) = (nbody_cfg(quick), amr_cfg(quick));
    // Pin the deterministic schedule so the sweep is bitwise reproducible.
    let det = Some(SchedPolicy::Det);
    let mach = |cpn: usize, mode: ContentionMode| -> Arc<Machine> {
        Arc::new(Machine::new(
            p,
            MachineConfig {
                cpus_per_node: cpn,
                contention: mode,
                ..MachineConfig::origin2000()
            },
        ))
    };

    let mut out = format!(
        "N3: shared-bus saturation at fixed P={p}, fattening nodes from {} to {}\n\
         CPUs each (ContentionMode::Fabric: every transfer arbitrates for its\n\
         source and destination node buses and the router hub ports on its\n\
         path; per-PE efficiency = analytic time / fabric time at the same\n\
         topology, so 1.00 means contention-free)\n",
        cpns[0],
        cpns[cpns.len() - 1],
    );
    let mut sas_report = String::new();
    for app in [App::Amr, App::NBody] {
        let mut rows = Vec::new();
        let mut eff = vec![[0.0f64; 3]; cpns.len()];
        for (ci, &cpn) in cpns.iter().enumerate() {
            let mut row = vec![cpn.to_string()];
            let mut by_kind = String::new();
            for (mi, &model) in Model::ALL.iter().enumerate() {
                let off =
                    apps::run_app_sched(mach(cpn, ContentionMode::Off), app, model, &nb, &am, det);
                let fab = apps::run_app_sched(
                    mach(cpn, ContentionMode::Fabric),
                    app,
                    model,
                    &nb,
                    &am,
                    det,
                );
                assert_eq!(fab.checksum, off.checksum, "fabric changed physics");
                let s = fab.net.as_ref().expect("fabric run reports NetStats");
                assert!(s.bus.transfers > 0, "fabric runs must cross node buses");
                eff[ci][mi] = off.sim_time as f64 / fab.sim_time.max(1) as f64;
                row.push(format!("{:.3}", eff[ci][mi]));
                if model == Model::Sas {
                    by_kind = fab
                        .net_kind_summary()
                        .expect("fabric run reports kind breakdown");
                    if app == App::Amr && ci == cpns.len() - 1 {
                        sas_report = fab.net_report.clone().expect("fabric run renders hotspots");
                    }
                }
            }
            row.push(by_kind);
            rows.push(row);
        }
        // The acceptance properties, on the adaptive headline workload:
        // fattening nodes costs CC-SAS per-PE efficiency monotonically
        // (every fill arbitrates for the shared bus), while bulk message
        // passing degrades strictly less (its per-message software
        // overhead is bus-free). The irregular N-body is displayed for
        // contrast but not asserted — its widest-node case is single-node
        // and all-local, which relieves the links as fast as the bus fills.
        if app == App::Amr {
            let sas: Vec<f64> = eff.iter().map(|e| e[2]).collect();
            let mp: Vec<f64> = eff.iter().map(|e| e[0]).collect();
            assert!(
                sas.windows(2).all(|w| w[1] < w[0]),
                "CC-SAS efficiency must fall monotonically with node width ({sas:?})"
            );
            assert!(
                1.0 - mp[mp.len() - 1] < 1.0 - sas[sas.len() - 1],
                "MP must degrade strictly less than CC-SAS at the widest node \
                 (MP {:.3} vs CC-SAS {:.3})",
                mp[mp.len() - 1],
                sas[sas.len() - 1]
            );
        }
        out.push('\n');
        out.push_str(&format!(
            "{} per-PE efficiency vs node width:\n",
            app.name()
        ));
        out.push_str(&render(
            &cells(&[
                "cpus/node",
                "MPI eff",
                "SHMEM eff",
                "CC-SAS eff",
                "CC-SAS queue by kind",
            ]),
            &rows,
        ));
    }

    // Hotspot anatomy of the saturated case: the report groups contended
    // resources by kind, and the top entries must include the shared buses
    // or hub ports — the links are no longer where the time goes.
    assert!(
        sas_report.lines().any(|l| {
            let t = l.trim_start();
            t.starts_with("bus ") || t.starts_with("hub ")
        }),
        "top-k hotspots must attribute delay to a bus or hub resource:\n{sas_report}"
    );
    out.push_str(&format!(
        "\nCC-SAS AMR resource hotspots at {} CPUs/node (kind column groups\n\
         links, node buses and hub ports):\n{sas_report}",
        cpns[cpns.len() - 1],
    ));
    out
}

fn q1_serving(quick: bool) -> String {
    use apps::RunMetrics;
    use machine::{ContentionMode, FaultMode};
    use o2k_serve::{Mitigation, ServeConfig};
    use parallel::SchedPolicy;

    // Tail latency of the sharded key-value service under the three
    // models, across four fabric conditions. Clients are open-loop
    // virtual-time event sources, so a million requests are a million
    // table lookups; every run pins the deterministic schedule so the
    // quantiles replay bitwise.
    let p = if quick { 16 } else { 32 };
    let base = ServeConfig {
        keys: if quick { 8_192 } else { 32_768 },
        requests: if quick { 40_000 } else { 90_000 },
        mean_gap_ns: 25_000,
        skew: 1.0,
        val_words: 32,
        service_ns: 1_500,
        deadline_ns: None,
        poll_ns: 4_000,
        seed: 0x00C0_FFEE,
        mitigation: Mitigation::Off,
        start_ns: 0,
    };
    let sick_spec = "plan:down0:deg8;r0d0:kill";
    let det = Some(SchedPolicy::Det);
    let scenarios: [(&str, &str); 4] = [
        ("healthy", "queued fabric, uniform keys"),
        ("skewed", "queued fabric, key skew 3.0 piles onto shard 0"),
        ("sick", "queued fabric with plan:down0:deg8;r0d0:kill"),
        ("fat-nodes", "full fabric (buses+hubs), 8 CPUs per node"),
    ];
    let mach = |scen: &str| -> Arc<Machine> {
        let cfg = match scen {
            "sick" => MachineConfig {
                contention: ContentionMode::Queued,
                fault: FaultMode::parse(sick_spec).expect("valid fault spec"),
                ..MachineConfig::origin2000()
            },
            "fat-nodes" => MachineConfig {
                contention: ContentionMode::Fabric,
                cpus_per_node: 8,
                ..MachineConfig::origin2000()
            },
            _ => MachineConfig {
                contention: ContentionMode::Queued,
                ..MachineConfig::origin2000()
            },
        };
        Arc::new(Machine::new(p, cfg))
    };
    let serve_cfg = |scen: &str| -> ServeConfig {
        ServeConfig {
            skew: if scen == "skewed" { 3.0 } else { 1.0 },
            ..base.clone()
        }
    };

    let mut out = format!(
        "Q1: KV-serving tail latency at P={p}, {} requests per cell\n\
         (open-loop clients, mean inter-arrival {} ns/PE, {}-key table,\n\
         256 B values; latency = virtual time from arrival to completion,\n\
         deterministic schedule everywhere)\n\n",
        base.requests, base.mean_gap_ns, base.keys,
    );
    let mut rows = Vec::new();
    let mut total_requests = 0u64;
    // p99 per (scenario, model) for the degradation assertions.
    let mut p99 = vec![[0u64; 3]; scenarios.len()];
    let mut queued = vec![[0u64; 3]; scenarios.len()];
    let mut skew_report = String::new();
    let mut sick_report = String::new();
    for (si, (scen, _)) in scenarios.iter().enumerate() {
        let cfg = serve_cfg(scen);
        let mut checksums = [0.0f64; 3];
        for (mi, &model) in Model::ALL.iter().enumerate() {
            let r: RunMetrics = o2k_serve::run_sched(mach(scen), model, &cfg, det);
            let s = r.serve.as_ref().expect("serving run carries ServeStats");
            assert_eq!(s.issued, cfg.requests, "every request admitted");
            assert_eq!(s.completed, cfg.requests, "no shedding without deadline");
            assert_eq!(
                r.counters.requests_served, s.completed,
                "every completed request was served exactly once"
            );
            total_requests += s.completed;
            checksums[mi] = r.checksum;
            p99[si][mi] = s.p99_ns;
            let net = r.net.as_ref().expect("contended run reports NetStats");
            queued[si][mi] = net.queued_ns;
            if *scen == "skewed" && model == Model::Shmem {
                skew_report = r
                    .net_report
                    .clone()
                    .expect("contended run renders hotspots");
            }
            if *scen == "sick" && model == Model::Sas {
                let net = r.net.as_ref().expect("sick run reports NetStats");
                assert_eq!(net.dead_links, 1, "the kill must register");
                assert_eq!(net.degraded_links, 1, "the degrade must register");
                assert!(net.detoured_transfers > 0, "traffic must detour the cut");
                sick_report = r.net_report.clone().expect("sick run renders hotspots");
            }
            rows.push(vec![
                format!("{} / {}", scen, model.name()),
                s.p50_ns.to_string(),
                s.p99_ns.to_string(),
                s.p999_ns.to_string(),
                s.max_ns.to_string(),
                format!("{:.0}", s.throughput_rps),
            ]);
        }
        assert_eq!(checksums[0], checksums[1], "{scen}: MP vs SHMEM data");
        assert_eq!(checksums[1], checksums[2], "{scen}: SHMEM vs CC-SAS data");
    }
    out.push_str(&render(
        &cells(&[
            "scenario / model",
            "p50 ns",
            "p99 ns",
            "p999 ns",
            "max ns",
            "req/s",
        ]),
        &rows,
    ));
    out.push_str(&format!(
        "\nTotal simulated client requests: {total_requests}\n"
    ));
    if !quick {
        assert!(
            total_requests >= 1_000_000,
            "the full suite must serve at least a million requests"
        );
    }

    // Skew must light up the fabric: piling a third of all traffic onto
    // shard 0's node queues its links far beyond the uniform run (the
    // hotspot table below names the ports).
    assert!(
        queued[1][1] > queued[0][1],
        "skewed SHMEM must queue more than uniform ({} vs {} ns)",
        queued[1][1],
        queued[0][1]
    );

    // The acceptance property: under the sick fabric (slow bristle into
    // node 0 plus a dead router port) MP's p99 degrades *less* than
    // CC-SAS's. An MP lookup pushes one 8-byte request through the sick
    // port and its 256-byte reply leaves node 0 on healthy links, while a
    // CC-SAS lookup drags every missing cache line through it at 8x
    // occupancy — so the coherence traffic, not the message traffic,
    // inherits the queue.
    let mp_deg = p99[2][0] as f64 / p99[0][0].max(1) as f64;
    let sh_deg = p99[2][1] as f64 / p99[0][1].max(1) as f64;
    let sas_deg = p99[2][2] as f64 / p99[0][2].max(1) as f64;
    assert!(
        mp_deg < sas_deg,
        "MP p99 must degrade less than CC-SAS under the sick fabric \
         (MP {mp_deg:.2}x vs CC-SAS {sas_deg:.2}x)"
    );
    out.push_str(&format!(
        "\np99 degradation under the sick fabric (sick p99 / healthy p99):\n  \
         MPI {mp_deg:.2}x, SHMEM {sh_deg:.2}x, CC-SAS {sas_deg:.2}x — one small request\n  \
         message amortises the slow port; per-line coherence fills pay it on\n  \
         every miss.\n"
    ));

    out.push_str(&format!(
        "\nSHMEM link hotspots with key skew 3.0 (shard 0's node saturates):\n{skew_report}"
    ));
    out.push_str(&format!(
        "\nCC-SAS link hotspots on the sick fabric (the degraded bristle and\n\
         the detoured traffic are annotated in place):\n{sick_report}"
    ));
    out
}

fn q2_mitigation(quick: bool) -> String {
    use apps::{RunMetrics, RunOpts};
    use o2k_serve::{Mitigation, ServeConfig};

    // Q2: hot-shard mitigation at scale. The Q1 skew scenario rerun on
    // the event core at P up to 1024, crossing skew x mitigation x model.
    // Replicated reads fan a hot shard's lookups over R deterministic
    // helper copies (SHMEM ships symmetric-heap copies at an epoch gate;
    // CC-SAS re-homes the hot shard's pages so coherence does the
    // fan-out; MP replica PEs join the REQ/REP mailbox protocol), and MP
    // work-stealing lets idle PEs claim request batches straight out of
    // the hot owner's mailbox. Everything runs the deterministic
    // schedule, so each cell replays bitwise — and with uniform keys the
    // mitigation plan is empty, which must leave runs *bitwise identical*
    // to mitigation off.
    let ps: Vec<usize> = if quick { vec![64] } else { vec![64, 256, 1024] };
    let mk_cfg = |p: usize, skew: f64, mitigation: Mitigation| ServeConfig {
        keys: 64 * p,
        requests: 32 * p as u64,
        mean_gap_ns: 15_000,
        skew,
        val_words: 64,
        service_ns: 1_500,
        deadline_ns: None,
        poll_ns: 4_000,
        seed: 0x00C0_FFEE,
        mitigation,
        // Clients start only after the table build and any replica-copy
        // epoch, so the measured window is pure steady-state serving.
        start_ns: 600_000,
    };
    const REPL: Mitigation = Mitigation::Replicate { replicas: 3 };
    let grid: [(Model, Mitigation, &str); 7] = [
        (Model::Mp, Mitigation::Off, "MPI / off"),
        (Model::Mp, REPL, "MPI / replicate"),
        (Model::Mp, Mitigation::Steal, "MPI / steal"),
        (Model::Shmem, Mitigation::Off, "SHMEM / off"),
        (Model::Shmem, REPL, "SHMEM / replicate"),
        (Model::Sas, Mitigation::Off, "CC-SAS / off"),
        (Model::Sas, REPL, "CC-SAS / replicate"),
    ];

    let mut out = format!(
        "Q2: hot-shard mitigation under key skew, event core, P up to {top}\n\
         (64 keys and 32 requests per PE, mean inter-arrival 15000 ns/PE,\n\
         64 B values, service 1500 ns; skew 3.0 piles ~25-35% of all traffic\n\
         onto the first shards; replicate = 3 helper copies, deterministic\n\
         demand-hash fan-out; steal = idle PEs claim request batches from\n\
         hot owners' mailboxes at virtual time)\n\n",
        top = ps.last().unwrap(),
    );
    let mut rows = Vec::new();
    let mut factors = String::new();
    for &p in &ps {
        for &skew in &[1.0f64, 3.0] {
            let mut baseline: Option<RunMetrics> = None;
            // Off-cell metrics per model for the bitwise and p99 checks.
            let mut off: Vec<(Model, RunMetrics)> = Vec::new();
            for &(model, mit, label) in &grid {
                let cfg = mk_cfg(p, skew, mit);
                let r = o2k_serve::run_opts(machine_queued(p), model, &cfg, RunOpts::det_event());
                let s = r.serve.as_ref().expect("serving run carries ServeStats");
                assert_eq!(s.issued, cfg.requests, "{label}: every request admitted");
                assert_eq!(
                    s.issued,
                    s.completed + s.failed,
                    "{label}: request conservation"
                );
                assert_eq!(s.failed, 0, "{label}: no shedding without a deadline");
                assert_eq!(
                    r.counters.requests_served, s.completed,
                    "{label}: every request served exactly once"
                );
                if let Some(b) = &baseline {
                    let bs = b.serve.as_ref().unwrap();
                    assert_eq!(
                        r.checksum.to_bits(),
                        b.checksum.to_bits(),
                        "P={p} skew={skew} {label}: same data served"
                    );
                    assert_eq!(
                        s.shard_counts, bs.shard_counts,
                        "P={p} skew={skew} {label}: demand is keyed by true owner"
                    );
                } else {
                    baseline = Some(r.clone());
                }
                match mit {
                    Mitigation::Off => {}
                    Mitigation::Replicate { .. } if skew > 1.0 => assert!(
                        r.counters.replica_bytes > 0,
                        "{label}: skewed replicate cell must ship copies"
                    ),
                    Mitigation::Steal if skew > 1.0 => assert!(
                        r.counters.requests_stolen > 0,
                        "{label}: skewed steal cell must steal"
                    ),
                    _ => {
                        // Uniform keys: nothing is hot, the plan is empty,
                        // and the run must be bitwise the off run.
                        let (_, b) = off
                            .iter()
                            .find(|(m, _)| *m == model)
                            .expect("off cell runs first per model");
                        assert_eq!(
                            r.sim_time, b.sim_time,
                            "{label}: empty plan must not move the clock"
                        );
                        assert_eq!(r.checksum.to_bits(), b.checksum.to_bits());
                        assert_eq!(
                            r.sched.as_ref().map(|s| s.fingerprint),
                            b.sched.as_ref().map(|s| s.fingerprint),
                            "{label}: empty plan must replay the off schedule"
                        );
                        assert_eq!(r.counters.replica_bytes, 0, "{label}");
                        assert_eq!(r.counters.requests_stolen, 0, "{label}");
                    }
                }
                if matches!(mit, Mitigation::Off) {
                    off.push((model, r.clone()));
                }
                rows.push(vec![
                    format!("{p} / {skew} / {label}"),
                    s.p50_ns.to_string(),
                    s.p99_ns.to_string(),
                    s.max_ns.to_string(),
                    r.counters.requests_stolen.to_string(),
                    (r.counters.replica_bytes / 1024).to_string(),
                ]);
                if skew > 1.0 && !matches!(mit, Mitigation::Off) {
                    let off_p99 = off
                        .iter()
                        .find(|(m, _)| *m == model)
                        .map(|(_, b)| b.serve.as_ref().unwrap().p99_ns)
                        .unwrap();
                    let cut = off_p99 as f64 / s.p99_ns.max(1) as f64;
                    factors.push_str(&format!(
                        "  P={p}: {label} cuts skewed p99 {cut:.2}x \
                         ({off_p99} -> {} ns)\n",
                        s.p99_ns
                    ));
                    // The acceptance property: at the top of the sweep,
                    // every MP and SHMEM mitigation must beat off.
                    if p == *ps.last().unwrap() && model != Model::Sas {
                        assert!(
                            s.p99_ns < off_p99,
                            "P={p} {label}: mitigation must cut skewed p99 \
                             ({} vs off {off_p99} ns)",
                            s.p99_ns
                        );
                    }
                }
            }
        }
    }
    out.push_str(&render(
        &cells(&[
            "P / skew / model / mitigation",
            "p50 ns",
            "p99 ns",
            "max ns",
            "stolen",
            "repl KiB",
        ]),
        &rows,
    ));
    out.push_str(&format!(
        "\nSkewed-tail p99 cut by mitigation (off p99 / mitigated p99):\n{factors}\
         \nUniform-key cells with mitigation on are bitwise identical to off\n\
         (empty plan: no extra messages, charges, or schedule points), and\n\
         every cell serves bit-identical data — the checksum and per-shard\n\
         demand vector match across all models and mitigation modes.\n"
    ));
    out
}

fn e1_scale(quick: bool) -> String {
    use apps::{RunMetrics, RunOpts};
    use o2k_serve::ServeConfig;
    use parallel::{thread_pe_cap, ExecMode, SchedPolicy};

    // E1: event-core scaling. The thread backend stops at the OS-thread
    // cap ([`parallel::thread_pe_cap`], 512 by default); the event core
    // runs every PE as a coroutine on one thread and carries the same
    // deterministic schedules to P = 1024. This table is simulated time
    // only, so it replays bitwise — the wall-clock trajectory of thread
    // vs event lives in BENCH_exec.json, which is allowed to vary by
    // host.
    let pes: Vec<usize> = if quick {
        vec![16, 64, 256]
    } else {
        vec![64, 256, 1024]
    };
    let nb = NBodyConfig {
        n: if quick { 512 } else { 4_096 },
        steps: 2,
        ..NBodyConfig::default()
    };
    let am = AmrConfig {
        nx: if quick { 32 } else { 64 },
        ny: if quick { 32 } else { 64 },
        steps: if quick { 1 } else { 2 },
        sweeps: if quick { 1 } else { 2 },
        ..AmrConfig::default()
    };
    // SHMEM serving scales one-sidedly (no per-pair DONE protocol), so it
    // is the model that meaningfully reaches 1024 shards.
    let sv = ServeConfig {
        keys: if quick { 16_384 } else { 65_536 },
        requests: if quick { 2_048 } else { 8_192 },
        seed: 0x00C0_FFEE,
        ..ServeConfig::default()
    };
    let event = RunOpts::det_event();
    let thread = RunOpts {
        sched: Some(SchedPolicy::Det),
        exec: Some(ExecMode::Thread),
        ..RunOpts::default()
    };

    let workloads: [(&str, &str); 3] = [
        ("nbody", "N-body / MPI"),
        ("amr", "AMR / MPI"),
        ("serve", "KV-serve / SHMEM"),
    ];
    let run = |p: usize, wl: &str, opts: RunOpts| -> RunMetrics {
        match wl {
            "nbody" => apps::run_app_opts(machine(p), App::NBody, Model::Mp, &nb, &am, opts),
            "amr" => apps::run_app_opts(machine(p), App::Amr, Model::Mp, &nb, &am, opts),
            "serve" => o2k_serve::run_opts(machine(p), Model::Shmem, &sv, opts),
            other => unreachable!("unknown workload {other}"),
        }
    };

    let mut out = format!(
        "E1: event-core scaling to P={top} (deterministic schedule, simulated\n\
         time; the thread backend is capped at {cap} OS threads, so past that\n\
         only the event core can run the team)\n\n",
        top = pes.last().unwrap(),
        cap = thread_pe_cap(),
    );

    let p0 = pes[0];
    let mut rows = Vec::new();
    for (wl, label) in &workloads {
        for &p in &pes {
            let r = run(p, wl, event.clone());
            assert!(r.sim_time > 0, "{wl} at P={p} must do work");
            let s = r.sched.expect("det runs carry SchedStats");
            if p == p0 {
                // Anchor: where both backends can run, the event core must
                // reproduce the thread run bitwise — same simulated time,
                // same physics, same pick sequence.
                let t = run(p, wl, thread.clone());
                assert_eq!(t.sim_time, r.sim_time, "{wl}: sim time must match");
                assert_eq!(
                    t.checksum.to_bits(),
                    r.checksum.to_bits(),
                    "{wl}: checksum must match bitwise"
                );
                let ts = t.sched.expect("det runs carry SchedStats");
                assert_eq!(ts.fingerprint, s.fingerprint, "{wl}: same pick sequence");
                assert_eq!(ts.switches, s.switches, "{wl}: same handoff count");
                out.push_str(&format!(
                    "  P={p0} {label}: thread and event backends agree bitwise \
                     (fingerprint {:016x})\n",
                    s.fingerprint
                ));
            }
            rows.push(vec![
                label.to_string(),
                p.to_string(),
                ms(r.sim_time),
                format!("{:.6e}", r.checksum),
                format!("{:016x}", s.fingerprint),
                s.switches.to_string(),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&render(
        &cells(&[
            "workload",
            "P",
            "sim ms",
            "checksum",
            "schedule fingerprint",
            "switches",
        ]),
        &rows,
    ));
    if pes.last().copied().unwrap_or(0) > thread_pe_cap() {
        out.push_str(&format!(
            "\nP={} exceeds the thread cap; those rows ran on the event core\n\
             alone (one OS thread, {} coroutine stacks).\n",
            pes.last().unwrap(),
            pes.last().unwrap()
        ));
    }
    out
}

fn c1_warm_start(quick: bool) -> String {
    use std::time::Instant;

    use apps::{RunMetrics, RunOpts};
    use machine::{ContentionMode, FaultMode};
    use o2k_serve::{Mitigation, ServeConfig};
    use o2k_snap::{SnapPoint, SnapSpec};
    use parallel::SchedPolicy;

    // C1: warm-starting a scenario sweep from a snapshot. Two prologues
    // are paid once and captured — the AMR mesh converged to its last
    // adaptation step, and the Q1 KV table fully built — then a fault ×
    // contention × policy sweep fans out from the snapshot, each cell
    // running only the tail it actually studies. The from-scratch sweep
    // re-pays the prologue in every cell; the difference is host
    // wall-clock, since a restored run replays the same virtual-time tail.
    //
    // C1 manages its own snapshot directory, so the process-wide
    // `--snapshot` / `--restore` spec is parked for the duration (a
    // global restore would warm-start the from-scratch half too).
    let parked_spec = o2k_snap::current_spec();
    o2k_snap::set_spec(None);

    let p = 16;
    // Heavy on sweeps: the smoothing sweeps (and their halo exchanges) are
    // exactly the per-step cost a warm start skips, while the adaptation
    // replay it cannot skip stays cheap.
    let am = if quick {
        AmrConfig {
            nx: 12,
            ny: 12,
            steps: 8,
            sweeps: 16,
            ..AmrConfig::default()
        }
    } else {
        AmrConfig {
            nx: 20,
            ny: 20,
            steps: 8,
            sweeps: 16,
            ..AmrConfig::default()
        }
    };
    let nb = nbody_cfg(quick); // unused by the AMR runs; run_app_opts wants both
                               // The serving half keeps its Q1 shape but a short tail: a warm start
                               // only saves the build phase, so the cells mostly measure that the
                               // restore itself is cheap (one symmetric-heap import).
    let sv = ServeConfig {
        keys: if quick { 16_384 } else { 32_768 },
        requests: if quick { 1_500 } else { 6_000 },
        mean_gap_ns: 25_000,
        skew: 1.0,
        val_words: 32,
        service_ns: 1_500,
        deadline_ns: None,
        poll_ns: 4_000,
        seed: 0x00C0_FFEE,
        mitigation: Mitigation::Off,
        start_ns: 0,
    };
    // AMR captures right before its last step: the mesh has converged
    // through steps-1 adaptations and only the final solve tail remains.
    let amr_gate = SnapPoint {
        name: "step".into(),
        index: (am.steps - 1) as u64,
    };
    let serve_gate = SnapPoint {
        name: "warm".into(),
        index: 0,
    };

    let faults: [(&str, &str); 3] = [
        ("healthy", "off"),
        ("slow", "plan:down0:deg8"),
        ("slow+dead", "plan:down0:deg8;r0d0:kill"),
    ];
    let policies: [(&str, SchedPolicy); 2] = [
        ("det", SchedPolicy::Det),
        ("explore:11", SchedPolicy::Explore { seed: 11 }),
    ];
    let conts: [(&str, ContentionMode); 2] = [
        ("queued", ContentionMode::Queued),
        ("fabric", ContentionMode::Fabric),
    ];
    // The sweep: AMR crosses all three axes (12 cells); serving crosses
    // fault × policy on the queued fabric (6 cells). 18 cells total.
    #[derive(Clone, Copy)]
    struct Cell {
        wl: &'static str,
        fault: (&'static str, &'static str),
        cont: (&'static str, ContentionMode),
        policy: (&'static str, SchedPolicy),
    }
    let mut sweep = Vec::new();
    for fault in faults {
        for cont in conts {
            for policy in policies {
                sweep.push(Cell {
                    wl: "amr",
                    fault,
                    cont,
                    policy,
                });
            }
        }
        for policy in policies {
            sweep.push(Cell {
                wl: "serve",
                fault,
                cont: conts[0],
                policy,
            });
        }
    }

    let mach = |cont: ContentionMode, fault: &str| -> Arc<Machine> {
        Arc::new(Machine::new(
            p,
            MachineConfig {
                contention: cont,
                fault: FaultMode::parse(fault).expect("valid fault spec"),
                ..MachineConfig::origin2000()
            },
        ))
    };
    let run = |c: &Cell, snap: Option<SnapSpec>| -> RunMetrics {
        let m = mach(c.cont.1, c.fault.1);
        let opts = RunOpts {
            sched: Some(c.policy.1),
            snap,
            ..RunOpts::default()
        };
        match c.wl {
            "amr" => apps::run_app_opts(m, App::Amr, Model::Shmem, &nb, &am, opts),
            // SHMEM serving restores as one symmetric-heap import; CC-SAS
            // would drag its whole coherence directory through every cell's
            // restore, which costs more than the build it skips.
            "serve" => o2k_serve::run_opts(m, Model::Shmem, &sv, opts),
            other => unreachable!("unknown workload {other}"),
        }
    };

    // --- from-scratch sweep: every cell pays the full prologue ---
    let mut scratch = Vec::new();
    let mut scratch_host = Vec::new();
    let scratch_start = Instant::now();
    for c in &sweep {
        let t = Instant::now();
        scratch.push(run(c, None));
        scratch_host.push(t.elapsed());
    }
    let scratch_total = scratch_start.elapsed();

    // --- warm-start sweep: capture each prologue once, then fan out ---
    let snap_dir = std::env::temp_dir().join(format!("o2k-c1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    std::fs::create_dir_all(&snap_dir).expect("create snapshot dir");
    let warm_start = Instant::now();
    let baseline = |wl: &'static str| Cell {
        wl,
        fault: faults[0],
        cont: conts[0],
        policy: policies[0],
    };
    let cap_amr = run(
        &baseline("amr"),
        Some(SnapSpec::Capture {
            dir: snap_dir.clone(),
            point: amr_gate.clone(),
        }),
    );
    let cap_serve = run(
        &baseline("serve"),
        Some(SnapSpec::Capture {
            dir: snap_dir.clone(),
            point: serve_gate,
        }),
    );
    let captured = std::fs::read_dir(&snap_dir)
        .expect("snapshot dir readable")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == o2k_snap::EXT))
        })
        .count();
    assert_eq!(captured, 2, "both prologues must have been captured");
    let mut warm = Vec::new();
    let mut warm_host = Vec::new();
    for c in &sweep {
        let t = Instant::now();
        warm.push(run(
            c,
            Some(SnapSpec::Restore {
                dir: snap_dir.clone(),
            }),
        ));
        warm_host.push(t.elapsed());
    }
    let warm_total = warm_start.elapsed();
    let _ = std::fs::remove_dir_all(&snap_dir);
    o2k_snap::set_spec(parked_spec);

    // Correctness before speed. Faults, contention modes and cooperative
    // schedules move virtual time, never the physics — so every cell's
    // checksum must be bitwise identical between the warm-started run and
    // its from-scratch twin.
    for (i, c) in sweep.iter().enumerate() {
        assert_eq!(
            warm[i].checksum.to_bits(),
            scratch[i].checksum.to_bits(),
            "{}/{}/{}/{}: warm-start changed the physics",
            c.wl,
            c.fault.0,
            c.cont.0,
            c.policy.0
        );
    }
    // On the cells matching the capture conditions the restored run must
    // replay the straight run's tail *exactly*: capture run, warm run and
    // from-scratch run agree on time, counters and pick sequence.
    for (wl, cap) in [("amr", &cap_amr), ("serve", &cap_serve)] {
        let i = sweep
            .iter()
            .position(|c| {
                c.wl == wl && c.fault.0 == "healthy" && c.cont.0 == "queued" && c.policy.0 == "det"
            })
            .expect("baseline cell present");
        for (kind, r) in [("capture", cap), ("warm", &warm[i])] {
            assert_eq!(
                r.checksum.to_bits(),
                scratch[i].checksum.to_bits(),
                "{wl} {kind}: checksum"
            );
            assert_eq!(r.sim_time, scratch[i].sim_time, "{wl} {kind}: sim time");
            assert_eq!(r.counters, scratch[i].counters, "{wl} {kind}: counters");
            assert_eq!(
                r.sched.as_ref().map(|s| s.fingerprint),
                scratch[i].sched.as_ref().map(|s| s.fingerprint),
                "{wl} {kind}: schedule fingerprint"
            );
        }
    }

    let ratio = scratch_total.as_secs_f64() / warm_total.as_secs_f64().max(1e-9);
    assert!(
        ratio > 1.5,
        "warm-starting the sweep must beat from-scratch clearly \
         (got {ratio:.2}x; from-scratch {scratch_total:.2?}, warm {warm_total:.2?})"
    );

    let mut out = format!(
        "C1: warm-starting a {n}-cell sweep from snapshots at P={p}\n\
         (AMR/SHMEM captured at gate step:{amr_at} — the converged mesh before\n\
         its final solve step — and KV-serve/SHMEM at gate warm — the built\n\
         table before the first request; each warm cell restores that state\n\
         and runs only its tail under its own fault, contention and schedule.\n\
         Host wall-clock; virtual-time results are asserted identical to the\n\
         from-scratch twin cell by cell)\n\n",
        n = sweep.len(),
        amr_at = amr_gate.index,
    );
    let host_ms = |d: &std::time::Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
    let mut rows = Vec::new();
    for (i, c) in sweep.iter().enumerate() {
        rows.push(vec![
            format!("{} / {} / {}", c.wl, c.fault.0, c.cont.0),
            c.policy.0.to_string(),
            host_ms(&scratch_host[i]),
            host_ms(&warm_host[i]),
            x2(scratch_host[i].as_secs_f64() / warm_host[i].as_secs_f64().max(1e-9)),
        ]);
    }
    out.push_str(&render(
        &cells(&[
            "cell (workload / fault / fabric)",
            "sched",
            "from-scratch ms",
            "from-snapshot ms",
            "speedup",
        ]),
        &rows,
    ));
    out.push_str(&format!(
        "\nSweep wall-clock: from-scratch {:.2?} vs from-snapshot {:.2?}\n\
         (the snapshot side *includes* both capture runs) — overall speedup\n\
         {:.2}x. Both baseline cells replay the capture run's tail bitwise\n\
         (checksum, counters, schedule fingerprint), and all {} cells keep\n\
         their physics unchanged under warm-start.\n",
        scratch_total,
        warm_total,
        ratio,
        rows.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        for id in ["t1", "t2", "t3"] {
            let out = run_experiment(id, true);
            assert!(out.len() > 100, "{id} too short:\n{out}");
            assert!(out.contains('\n'));
        }
    }

    #[test]
    fn quick_figures_render() {
        for id in ["f2", "f6", "f7"] {
            let out = run_experiment(id, true);
            assert!(out.len() > 100, "{id} too short");
        }
    }

    #[test]
    fn a_series_render() {
        for id in ["a1", "a2", "a3"] {
            let out = run_experiment(id, true);
            assert!(out.len() > 80, "{id} too short");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run_experiment("zzz", true);
    }

    #[test]
    fn n1_contention_renders_and_grows() {
        // The experiment itself asserts queueing delay grows with P and
        // that off-mode runs never build a NetSim.
        let out = run_experiment("n1", true);
        assert!(out.contains("queued ms"), "missing sweep table:\n{out}");
        assert!(out.contains("hotspot anatomy"), "missing report:\n{out}");
    }

    #[test]
    fn n3_bus_saturation_renders_and_saturates() {
        // The experiment itself asserts CC-SAS per-PE efficiency falls
        // monotonically with node width, that MP degrades strictly less,
        // and that the top hotspots name a bus or hub resource.
        let out = run_experiment("n3", true);
        assert!(out.contains("per-PE efficiency"), "missing sweep:\n{out}");
        assert!(
            out.contains("bus") && out.contains("hub"),
            "missing kind breakdown:\n{out}"
        );
    }

    #[test]
    fn q1_serving_renders_and_degrades_gracefully() {
        // The experiment itself asserts request conservation, cross-model
        // checksum equality per scenario, the skew hotspot, and that MP's
        // p99 degrades less than CC-SAS's under the sick fabric.
        let out = run_experiment("q1", true);
        assert!(out.contains("p99 ns"), "missing latency table:\n{out}");
        assert!(
            out.contains("Total simulated client requests"),
            "missing request count:\n{out}"
        );
        assert!(
            out.contains("p99 degradation under the sick fabric"),
            "missing degradation summary:\n{out}"
        );
        assert!(
            out.contains("[deg8]"),
            "hotspot report must mark the sick port:\n{out}"
        );
    }

    #[test]
    fn q2_mitigation_cuts_the_skewed_tail() {
        // The experiment itself asserts request conservation, cross-cell
        // checksum and shard-demand equality, that uniform-key cells with
        // mitigation on replay the off cell bitwise (empty plan), and
        // that every MP and SHMEM mitigation beats off on skewed p99 at
        // the top of the sweep.
        let out = run_experiment("q2", true);
        assert!(out.contains("p99 ns"), "missing latency table:\n{out}");
        assert!(
            out.contains("cuts skewed p99"),
            "missing mitigation factors:\n{out}"
        );
        assert!(
            out.contains("bitwise identical to off"),
            "missing inertness summary:\n{out}"
        );
    }

    #[test]
    fn e1_scales_on_the_event_core_and_anchors_to_threads() {
        // The experiment itself asserts that at the smallest P the thread
        // and event backends agree bitwise (sim time, checksum bits,
        // schedule fingerprint, handoff count) and that every larger P
        // completes on the event core.
        let out = run_experiment("e1", true);
        assert!(
            out.contains("agree bitwise"),
            "missing cross-backend anchor:\n{out}"
        );
        assert!(
            out.contains("schedule fingerprint"),
            "missing scaling table:\n{out}"
        );
        assert!(
            out.contains("256"),
            "must reach the top of the sweep:\n{out}"
        );
    }

    #[test]
    #[ignore = "runs the whole quick C1 sweep twice (minutes unoptimised); CI runs `repro c1 --quick` in release"]
    fn c1_warm_start_renders_and_wins() {
        // The experiment itself asserts both prologues were captured, that
        // every warm cell's physics matches its from-scratch twin, that the
        // baseline cells replay the capture run bitwise, and that the
        // snapshot sweep beats from-scratch on host wall-clock.
        let out = run_experiment("c1", true);
        assert!(out.contains("18-cell sweep"), "missing sweep size:\n{out}");
        assert!(
            out.contains("from-snapshot ms"),
            "missing wall-clock table:\n{out}"
        );
        assert!(
            out.contains("overall speedup"),
            "missing speedup summary:\n{out}"
        );
    }

    #[test]
    fn n2_fault_renders_and_recovers() {
        // The experiment itself asserts the physics never moves, that
        // traffic detours around the cut, and that MP retains more
        // throughput than CC-SAS under the faulted fabric.
        let out = run_experiment("n2", true);
        assert!(out.contains("slow+dead"), "missing fault table:\n{out}");
        assert!(
            out.contains("throughput retained"),
            "missing recovery summary:\n{out}"
        );
        assert!(
            out.contains("[deg8]"),
            "hotspot report must annotate the degraded link:\n{out}"
        );
    }
}

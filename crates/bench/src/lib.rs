//! Experiment implementations behind the `repro` binary: one function per
//! table/figure of the reconstructed evaluation suite (see DESIGN.md §3).
//!
//! Each function returns the rendered text block; the binary prints it and
//! archives it under `results/`.

pub mod experiments;
pub mod trajectory;

pub use experiments::{run_experiment, EXPERIMENT_IDS};

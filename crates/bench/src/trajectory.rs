//! The `BENCH_*.json` trajectory files: parse, merge, render.
//!
//! The repo pins wall-clock trajectories in flat JSON files at the repo
//! root (`BENCH_apps.json`, `BENCH_exec.json`, `BENCH_net.json`,
//! `BENCH_serve.json`). Each
//! entry's `unit_work` string doubles as its config digest: it names
//! exactly what the bench id measures, so diffs across PRs compare like
//! with like. [`Suite::merge_entry`] enforces that — refreshing an id
//! whose `unit_work` changed is refused; a changed workload must move to
//! a new id (the N-body P=1024 `_unfiltered` split is the precedent).
//!
//! The parser is hand-rolled for the one flat shape these files use (no
//! external JSON dependency): an object of string/number fields plus a
//! `results` array of entry objects.

/// One bench entry: a pinned mean and the exact workload it measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub id: String,
    pub mean_ns: u64,
    /// Human-readable config digest; [`Suite::merge_entry`] treats any
    /// change to it as "this is a different benchmark".
    pub unit_work: String,
    /// Optional per-entry caveat (e.g. why a cell is recorded unfiltered).
    pub note: Option<String>,
}

/// One `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suite {
    pub suite: String,
    pub bench_command: String,
    pub date: String,
    pub toolchain: String,
    pub note: String,
    pub results: Vec<Entry>,
}

impl Suite {
    /// Parse a trajectory file.
    ///
    /// # Errors
    /// Returns a message naming the first malformed construct.
    pub fn parse(text: &str) -> Result<Suite, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let suite = p.parse_suite()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(suite)
    }

    /// Fold a fresh measurement into the suite.
    ///
    /// An unknown id is appended; a known id has its `mean_ns` (and note)
    /// refreshed *only* if the incoming `unit_work` matches the recorded
    /// one bitwise.
    ///
    /// # Errors
    /// Refuses a known id whose `unit_work` changed — the workload moved,
    /// so the trajectory must continue under a new id.
    pub fn merge_entry(&mut self, e: Entry) -> Result<(), String> {
        match self.results.iter_mut().find(|r| r.id == e.id) {
            None => {
                self.results.push(e);
                Ok(())
            }
            Some(r) if r.unit_work == e.unit_work => {
                r.mean_ns = e.mean_ns;
                if e.note.is_some() {
                    r.note = e.note;
                }
                Ok(())
            }
            Some(r) => Err(format!(
                "bench id {:?}: unit_work changed ({:?} -> {:?}); a changed \
                 workload must be recorded under a new id so trajectory \
                 diffs compare like with like",
                r.id, r.unit_work, e.unit_work
            )),
        }
    }

    /// Render back to the repo's on-disk format (2-space indent, one
    /// entry per line). `parse(render(s)) == s` for any suite.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (k, v) in [
            ("suite", &self.suite),
            ("bench_command", &self.bench_command),
            ("date", &self.date),
            ("toolchain", &self.toolchain),
            ("note", &self.note),
        ] {
            out.push_str(&format!("  {}: {},\n", quote(k), quote(v)));
        }
        out.push_str("  \"results\": [\n");
        for (i, e) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"id\": {}, \"mean_ns\": {}, \"unit_work\": {}",
                quote(&e.id),
                e.mean_ns,
                quote(&e.unit_work)
            ));
            if let Some(n) = &e.note {
                out.push_str(&format!(", \"note\": {}", quote(n)));
            }
            out.push_str(" }");
            if i + 1 < self.results.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).ok_or("unterminated escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            char::from_u32(code).ok_or("bad \\u code point")?
                        }
                        other => return Err(format!("bad escape \\{}", *other as char)),
                    });
                    self.i += 1;
                }
                Some(_) => {
                    // Strings are UTF-8; copy whole code points.
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected a number at offset {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn parse_suite(&mut self) -> Result<Suite, String> {
        self.expect(b'{')?;
        let mut suite = Suite {
            suite: String::new(),
            bench_command: String::new(),
            date: String::new(),
            toolchain: String::new(),
            note: String::new(),
            results: Vec::new(),
        };
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "suite" => suite.suite = self.string()?,
                "bench_command" => suite.bench_command = self.string()?,
                "date" => suite.date = self.string()?,
                "toolchain" => suite.toolchain = self.string()?,
                "note" => suite.note = self.string()?,
                "results" => suite.results = self.entries()?,
                other => return Err(format!("unknown suite field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(suite);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn entries(&mut self) -> Result<Vec<Entry>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            out.push(self.entry()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn entry(&mut self) -> Result<Entry, String> {
        self.expect(b'{')?;
        let mut e = Entry {
            id: String::new(),
            mean_ns: 0,
            unit_work: String::new(),
            note: None,
        };
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "id" => e.id = self.string()?,
                "mean_ns" => e.mean_ns = self.number()?,
                "unit_work" => e.unit_work = self.string()?,
                "note" => e.note = Some(self.string()?),
                other => return Err(format!("unknown entry field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    if e.id.is_empty() {
                        return Err("entry without an id".into());
                    }
                    return Ok(e);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Suite {
        Suite::parse(include_str!("../../../BENCH_exec.json")).expect("repo file parses")
    }

    #[test]
    fn parses_the_checked_in_files_and_roundtrips() {
        for text in [
            include_str!("../../../BENCH_exec.json"),
            include_str!("../../../BENCH_apps.json"),
            include_str!("../../../BENCH_net.json"),
            include_str!("../../../BENCH_serve.json"),
        ] {
            let s = Suite::parse(text).expect("checked-in trajectory parses");
            assert!(!s.results.is_empty());
            let again = Suite::parse(&s.render()).expect("rendered form parses");
            assert_eq!(s, again, "render/parse must round-trip");
        }
    }

    #[test]
    fn the_unfiltered_nbody_cell_carries_its_own_id_and_note() {
        let s = sample();
        let e = s
            .results
            .iter()
            .find(|e| e.id == "nbody_p1024_event_unfiltered")
            .expect("split id present");
        assert!(
            e.note.as_deref().is_some_and(|n| n.contains("unfiltered")),
            "the caveat must live on the entry itself"
        );
        assert!(
            !s.results.iter().any(|e| e.id == "nbody_p1024_event"),
            "the old id must not linger beside the split one"
        );
    }

    #[test]
    fn merge_refreshes_matching_ids_and_appends_new_ones() {
        let mut s = sample();
        let n = s.results.len();
        let mut e = s.results[0].clone();
        e.mean_ns += 1;
        s.merge_entry(e.clone()).expect("same unit_work merges");
        assert_eq!(s.results[0].mean_ns, e.mean_ns);
        assert_eq!(s.results.len(), n);
        s.merge_entry(Entry {
            id: "brand_new".into(),
            mean_ns: 7,
            unit_work: "something else".into(),
            note: None,
        })
        .expect("new ids append");
        assert_eq!(s.results.len(), n + 1);
    }

    #[test]
    fn merge_refuses_a_changed_config_digest() {
        let mut s = sample();
        let mut e = s.results[0].clone();
        e.unit_work = format!("{} but bigger", e.unit_work);
        let err = s.merge_entry(e).expect_err("changed unit_work must refuse");
        assert!(err.contains("new id"), "error must point at the fix: {err}");
    }

    #[test]
    fn parse_rejects_malformed_files() {
        for bad in [
            "",
            "{",
            r#"{"suite": 3}"#,
            r#"{"suite": "x", "results": [{"mean_ns": 1}]}"#,
            r#"{"suite": "x"} trailing"#,
        ] {
            assert!(Suite::parse(bad).is_err(), "must reject {bad:?}");
        }
    }
}

//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro <id>... [--quick] [--sched <policy>] [--exec <mode>] [--fault <spec>]
//!               [--snapshot <dir>@<gate>[:index] | --restore <dir>] [--trace <dir>]
//! repro all [--quick]                       run the whole suite
//! ```
//!
//! Output goes to stdout and to `results/<id>.txt`. With `--trace <dir>`
//! (or the `O2K_TRACE=<dir>` environment variable), event tracing is
//! enabled globally: every team run any experiment performs is recorded,
//! and its trace written to `<dir>/<id>_runN.trace.json` in Chrome
//! `trace_event` format (loadable at <https://ui.perfetto.dev>). Tracing
//! never perturbs simulated times, so f1–f8/a1–a6 outputs are identical
//! with it on.
//!
//! `--sched <policy>` (or `O2K_SCHED=<policy>`) picks the team scheduling
//! policy: `det` (default here — every table is bitwise reproducible),
//! `os` (free-running host threads), `explore:<seed>` (seeded random
//! interleaving), or `bp:<seed>:<budget>` (bounded preemption). See
//! DESIGN.md "Determinism & scheduling".
//!
//! `--exec <mode>` (or `O2K_EXEC=<mode>`) picks the execution backend:
//! `thread` (default — one OS thread per PE) or `event` (every PE a
//! coroutine on one OS thread; required past 512 PEs, e.g. experiment
//! E1's P=1024 points). Under `det` the two backends produce
//! byte-identical archives — CI diffs them.
//!
//! `--fault <spec>` (or `O2K_FAULT=<spec>`) injects link faults into every
//! machine the experiments build: `off` or
//! `plan:<link>:<action>[@<ns>][;…]` with links `up<N>` / `down<N>` /
//! `r<R>d<D>` and actions `kill` / `deg<F>` / `heal` (see DESIGN.md §4c).
//! Faults only bite when the contention model is on; N2 carries its own
//! plans and ignores this default.
//!
//! `--snapshot <dir>@<gate>[:index]` writes a checkpoint of every team
//! run into `<dir>` when execution reaches the named snap gate (`step:4`,
//! `warm`, …); `--restore <dir>` warm-starts every run whose snapshot
//! exists in `<dir>` (runs with no matching snapshot fall back to
//! from-scratch). Snap gates cost zero virtual time, so a capturing run's
//! tables are bitwise identical to a plain run's and a restored run
//! replays the plain run's tail exactly — see DESIGN.md §4g. Experiment
//! C1 manages its own snapshot directory and ignores these flags.

use std::fs;
use std::time::Instant;

use o2k_bench::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut trace_dir: Option<String> = std::env::var("O2K_TRACE").ok();
    // Default to the deterministic scheduler so regenerated tables are
    // bitwise reproducible; `--sched os` restores free-running threads.
    let mut sched = std::env::var("O2K_SCHED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(o2k_sched::SchedPolicy::Det);
    let mut exec = std::env::var("O2K_EXEC")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(o2k_sched::ExecMode::Thread);
    // `None` leaves the `O2K_FAULT` / healthy default in place.
    let mut fault: Option<machine::FaultMode> = None;
    let mut snap: Option<o2k_snap::SnapSpec> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter().filter(|a| *a != "--quick");
    while let Some(a) = it.next() {
        if a == "--trace" {
            match it.next() {
                Some(d) => trace_dir = Some(d.clone()),
                None => {
                    eprintln!("--trace requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else if a == "--sched" {
            match it.next().map(|s| s.parse()) {
                Some(Ok(p)) => sched = p,
                _ => {
                    eprintln!(
                        "--sched requires a policy: os, det, explore:<seed>, bp:<seed>:<budget>"
                    );
                    std::process::exit(2);
                }
            }
        } else if a == "--exec" {
            match it.next().map(|s| s.parse()) {
                Some(Ok(e)) => exec = e,
                _ => {
                    eprintln!("--exec requires a mode: thread or event");
                    std::process::exit(2);
                }
            }
        } else if a == "--fault" {
            match it.next().map(|s| machine::FaultMode::parse(s)) {
                Some(Some(f)) => fault = Some(f),
                _ => {
                    eprintln!(
                        "--fault requires a spec: off or plan:<link>:<action>[@<ns>][;...] \
                         (links up<N>/down<N>/r<R>d<D>, actions kill/deg<F>/heal)"
                    );
                    std::process::exit(2);
                }
            }
        } else if a == "--snapshot" {
            match it.next().map(|s| o2k_snap::SnapSpec::parse_capture(s)) {
                Some(Ok(s)) => snap = Some(s),
                Some(Err(e)) => {
                    eprintln!("--snapshot: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--snapshot requires <dir>@<gate>[:index], e.g. snaps@step:4");
                    std::process::exit(2);
                }
            }
        } else if a == "--restore" {
            match it.next().map(|s| o2k_snap::SnapSpec::parse_restore(s)) {
                Some(Ok(s)) => snap = Some(s),
                _ => {
                    eprintln!("--restore requires a snapshot directory");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(a.to_lowercase());
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro <id>... [--quick] [--sched <policy>] [--exec <mode>] [--fault <spec>] [--snapshot <dir>@<gate>[:index] | --restore <dir>] [--trace <dir>]   ids: {} all",
            EXPERIMENT_IDS.join(" ")
        );
        std::process::exit(2);
    }
    o2k_sched::set_default_policy(sched);
    o2k_sched::set_default_exec(exec);
    if let Some(f) = fault {
        machine::fault::set_default_fault(f);
    }
    o2k_snap::set_spec(snap);
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &trace_dir {
        fs::create_dir_all(dir).expect("create trace dir");
        o2k_trace::set_enabled(true);
    }
    fs::create_dir_all("results").expect("create results dir");
    let mut sections = Vec::new();
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment {id}; ids: {}", EXPERIMENT_IDS.join(" "));
            std::process::exit(2);
        }
        let start = Instant::now();
        let out = run_experiment(id, quick);
        let elapsed = start.elapsed();
        println!("{out}");
        println!("[{id} regenerated in {elapsed:.2?}]\n");
        fs::write(format!("results/{id}.txt"), &out).expect("write result file");
        if let Some(dir) = &trace_dir {
            for (n, trace) in o2k_trace::sink_drain().iter().enumerate() {
                let path = format!("{dir}/{id}_run{n}.trace.json");
                fs::write(&path, o2k_trace::chrome::to_chrome_json(trace))
                    .expect("write trace json");
                println!("[trace archived: {path}]");
            }
        }
        sections.push(o2k_core::report::Section {
            id: id.clone(),
            body: out,
        });
    }
    if sections.len() == EXPERIMENT_IDS.len() {
        let header = format!(
            "Generated by `repro all{}` — every table, figure and ablation of the\nreconstructed evaluation suite (see DESIGN.md §3 and EXPERIMENTS.md).",
            if quick { " --quick" } else { "" }
        );
        let report = o2k_core::report::assemble(&header, &sections);
        fs::write("results/REPORT.md", report).expect("write REPORT.md");
        println!("[full suite stitched into results/REPORT.md]");
    }
}

//! Criterion benchmarks of the six full applications at a small
//! configuration (P = 4): end-to-end simulator throughput per model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use apps::{run_app, AmrConfig, App, Model, NBodyConfig};
use machine::{Machine, MachineConfig};

fn bench_apps(c: &mut Criterion) {
    let machine = Arc::new(Machine::new(4, MachineConfig::origin2000()));
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let name = format!(
                "{}_{}",
                app.name().to_lowercase().replace('-', ""),
                model.name().to_lowercase().replace('-', "")
            );
            let m = Arc::clone(&machine);
            let (nb, am) = (nb.clone(), am.clone());
            c.bench_function(&name, move |b| {
                b.iter(|| run_app(Arc::clone(&m), app, model, &nb, &am))
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_apps
}
criterion_main!(benches);

//! Criterion benchmarks of the execution backends:
//!
//! * `coro_switch_100` — 100 yield/resume pairs through the raw stack
//!   switch (the event core's unit cost, vs ~µs for a condvar handoff);
//! * `nbody_p64_{thread,event}` / `serve_p64_{thread,event}` — the same
//!   deterministic run on both backends, head to head;
//! * `{nbody,serve}_p256_event`, `serve_p1024_event`, and
//!   `nbody_p1024_event_unfiltered` — the scaling trajectory past the
//!   thread cap, event core only (the wall-clock curve BENCH_exec.json
//!   pins; every run replays the det schedule, so sim results are fixed).
//!   The N-body P=1024 cell is message-volume-bound, hence its own id.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use apps::{App, Model, NBodyConfig, RunOpts};
use machine::{Machine, MachineConfig};
use o2k_sched::coro;
use o2k_serve::ServeConfig;
use parallel::{ExecMode, SchedPolicy};

fn machine(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::origin2000()))
}

fn opts(exec: ExecMode) -> RunOpts {
    RunOpts {
        sched: Some(SchedPolicy::Det),
        exec: Some(exec),
        ..RunOpts::default()
    }
}

fn nbody_cfg() -> NBodyConfig {
    NBodyConfig {
        n: 2_048,
        steps: 1,
        ..NBodyConfig::default()
    }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        keys: 16_384,
        requests: 2_048,
        seed: 0x00C0_FFEE,
        ..ServeConfig::default()
    }
}

fn bench_exec(c: &mut Criterion) {
    c.bench_function("coro_switch_100", |b| {
        b.iter(|| {
            let mut co = coro::Coro::new(coro::stack_bytes(), || {
                for _ in 0..100 {
                    coro::yield_current();
                }
            });
            let mut resumes = 0u32;
            while !co.resume() {
                resumes += 1;
            }
            resumes
        })
    });

    let nb = nbody_cfg();
    for (p, exec) in [
        (64, ExecMode::Thread),
        (64, ExecMode::Event),
        (256, ExecMode::Event),
        (1024, ExecMode::Event),
    ] {
        // The P=1024 cell is dominated by O(P^2) MP message volume —
        // simulated work no backend can elide — so its trajectory lives
        // under its own `_unfiltered` id (see BENCH_exec.json).
        let name = if p == 1024 {
            format!("nbody_p{p}_{exec}_unfiltered")
        } else {
            format!("nbody_p{p}_{exec}")
        };
        let nb = nb.clone();
        c.bench_function(&name, move |b| {
            b.iter(|| {
                apps::run_app_opts(
                    machine(p),
                    App::NBody,
                    Model::Mp,
                    &nb,
                    &apps::AmrConfig::small(),
                    opts(exec),
                )
                .sim_time
            })
        });
    }

    let sv = serve_cfg();
    for (p, exec) in [
        (64, ExecMode::Thread),
        (64, ExecMode::Event),
        (256, ExecMode::Event),
        (1024, ExecMode::Event),
    ] {
        let name = format!("serve_p{p}_{exec}");
        let sv = sv.clone();
        c.bench_function(&name, move |b| {
            b.iter(|| o2k_serve::run_opts(machine(p), Model::Shmem, &sv, opts(exec)).sim_time)
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench_exec
}
criterion_main!(benches);

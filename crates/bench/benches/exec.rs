//! Criterion benchmarks of the execution backends:
//!
//! * `coro_switch_100` — 100 yield/resume pairs through the raw stack
//!   switch (the event core's unit cost, vs ~µs for a condvar handoff);
//! * `nbody_p64_{thread,event}` / `serve_p64_{thread,event}` — the same
//!   deterministic run on both backends, head to head;
//! * `{nbody,serve}_p256_event`, `serve_p1024_event`, and
//!   `nbody_p1024_event_unfiltered` — the scaling trajectory past the
//!   thread cap, event core only (the wall-clock curve BENCH_exec.json
//!   pins; every run replays the det schedule, so sim results are fixed).
//!   The N-body P=1024 cell is message-volume-bound, hence its own id.
//! * `event_heap_{indexed,lazy}_p1024` — the pending-PE set in isolation:
//!   one million pick/advance handoffs through the fixed-capacity indexed
//!   `PeHeap` versus the old lazy-invalidation `BinaryHeap` + stamp
//!   design it replaced, at the P=1024 team size the event core targets.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use apps::{App, Model, NBodyConfig, RunOpts};
use machine::{Machine, MachineConfig};
use o2k_sched::coro;
use o2k_serve::ServeConfig;
use parallel::{ExecMode, SchedPolicy};

fn machine(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::origin2000()))
}

fn opts(exec: ExecMode) -> RunOpts {
    RunOpts {
        sched: Some(SchedPolicy::Det),
        exec: Some(exec),
        ..RunOpts::default()
    }
}

fn nbody_cfg() -> NBodyConfig {
    NBodyConfig {
        n: 2_048,
        steps: 1,
        ..NBodyConfig::default()
    }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        keys: 16_384,
        requests: 2_048,
        seed: 0x00C0_FFEE,
        ..ServeConfig::default()
    }
}

fn bench_exec(c: &mut Criterion) {
    c.bench_function("coro_switch_100", |b| {
        b.iter(|| {
            let mut co = coro::Coro::new(coro::stack_bytes(), || {
                for _ in 0..100 {
                    coro::yield_current();
                }
            });
            let mut resumes = 0u32;
            while !co.resume() {
                resumes += 1;
            }
            resumes
        })
    });

    let nb = nbody_cfg();
    for (p, exec) in [
        (64, ExecMode::Thread),
        (64, ExecMode::Event),
        (256, ExecMode::Event),
        (1024, ExecMode::Event),
    ] {
        // The P=1024 cell is dominated by O(P^2) MP message volume —
        // simulated work no backend can elide — so its trajectory lives
        // under its own `_unfiltered` id (see BENCH_exec.json).
        let name = if p == 1024 {
            format!("nbody_p{p}_{exec}_unfiltered")
        } else {
            format!("nbody_p{p}_{exec}")
        };
        let nb = nb.clone();
        c.bench_function(&name, move |b| {
            b.iter(|| {
                apps::run_app_opts(
                    machine(p),
                    App::NBody,
                    Model::Mp,
                    &nb,
                    &apps::AmrConfig::small(),
                    opts(exec),
                )
                .sim_time
            })
        });
    }

    let sv = serve_cfg();
    for (p, exec) in [
        (64, ExecMode::Thread),
        (64, ExecMode::Event),
        (256, ExecMode::Event),
        (1024, ExecMode::Event),
    ] {
        let name = format!("serve_p{p}_{exec}");
        let sv = sv.clone();
        c.bench_function(&name, move |b| {
            b.iter(|| o2k_serve::run_opts(machine(p), Model::Shmem, &sv, opts(exec)).sim_time)
        });
    }
}

/// One simulated handoff cycle: pick the min-clock PE, remove it (it now
/// runs), advance its clock, re-schedule it — the exact traffic
/// `CoopSched::hand_off`/`make_runnable` drive through the pending set.
fn bench_event_heap(c: &mut Criterion) {
    const P: usize = 1024;
    const HANDOFFS: usize = 1 << 20;
    c.bench_function("event_heap_indexed_p1024", |b| {
        b.iter(|| {
            let mut heap = o2k_sched::PeHeap::new(P);
            for pe in 0..P {
                heap.insert_or_update(pe, 0);
            }
            let mut sum = 0u64;
            for i in 0..HANDOFFS {
                let (clock, pe) = heap.peek().unwrap();
                heap.remove(pe);
                sum = sum.wrapping_add(clock);
                heap.insert_or_update(pe, clock + 10 + (i as u64 % 7));
            }
            sum
        })
    });
    c.bench_function("event_heap_lazy_p1024", |b| {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        b.iter(|| {
            // The pre-refactor design: push-per-wake, stamp-per-PE, stale
            // entries skipped (and popped) when they surface.
            let mut heap: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
            let mut stamp = vec![0u64; P];
            let mut clock = vec![0u64; P];
            for (pe, s) in stamp.iter_mut().enumerate() {
                *s += 1;
                heap.push(Reverse((0, pe, *s)));
            }
            let mut sum = 0u64;
            for i in 0..HANDOFFS {
                let (c0, pe) = loop {
                    let &Reverse((c0, p, s)) = heap.peek().unwrap();
                    if stamp[p] == s {
                        break (c0, p);
                    }
                    heap.pop();
                };
                stamp[pe] += 1; // leave_runnable: lazy invalidation
                sum = sum.wrapping_add(c0);
                clock[pe] = c0 + 10 + (i as u64 % 7);
                stamp[pe] += 1;
                heap.push(Reverse((clock[pe], pe, stamp[pe])));
            }
            sum
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench_exec, bench_event_heap
}
criterion_main!(benches);

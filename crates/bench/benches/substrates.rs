//! Criterion micro-benchmarks of the substrate crates: octree build and
//! force evaluation, mesh adaptation, partitioners, and the cache
//! simulator. These measure the *simulator's* wall-clock cost (how fast
//! the reproduction itself runs), complementing the virtual-time results
//! the `repro` binary produces.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mesh::adaptive::AdaptiveMesh;
use mesh::dual::dual_graph;
use nbody::force::accel_at;
use nbody::octree::Octree;
use nbody::plummer::plummer;
use nbody::vec3::Vec3;
use partition::{hilbert_partition, morton_partition, rcb_partition, WeightedPoint};
use sas::cache::{line_tag, CacheSim};

fn bench_octree(c: &mut Criterion) {
    let bodies = plummer(2048, 7);
    let pos: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    c.bench_function("octree_build_2048", |b| {
        b.iter(|| Octree::build(black_box(&pos), black_box(&mass), 4))
    });
    let tree = Octree::build(&pos, &mass, 4);
    c.bench_function("bh_force_256_bodies", |b| {
        b.iter(|| {
            let mut acc = Vec3::ZERO;
            for p in pos.iter().take(256) {
                acc += accel_at(black_box(&tree), *p, 0.8, 0.05).0;
            }
            acc
        })
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_refine_band_32x32", |b| {
        b.iter_batched(
            || AdaptiveMesh::structured(32, 32, 1.0, 1.0),
            |mut m| {
                let marked: Vec<u32> = m
                    .active_tris()
                    .into_iter()
                    .filter(|&t| (m.centroid_of(t).x - 0.5).abs() < 0.1)
                    .collect();
                m.refine(black_box(&marked));
                m
            },
            BatchSize::SmallInput,
        )
    });
    let mut m = AdaptiveMesh::structured(32, 32, 1.0, 1.0);
    let marked: Vec<u32> = m.active_tris().into_iter().step_by(5).collect();
    m.refine(&marked);
    c.bench_function("dual_graph_adapted", |b| {
        b.iter(|| dual_graph(black_box(&m)))
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let pts: Vec<WeightedPoint> = (0..4096)
        .map(|i| {
            let x = (i % 64) as f64 + 0.3 * ((i * 37 % 100) as f64 / 100.0);
            let y = (i / 64) as f64;
            WeightedPoint::new(x, y, 1.0 + (i % 3) as f64)
        })
        .collect();
    c.bench_function("rcb_4096_into_16", |b| {
        b.iter(|| rcb_partition(black_box(&pts), 16))
    });
    c.bench_function("morton_4096_into_16", |b| {
        b.iter(|| morton_partition(black_box(&pts), 16))
    });
    c.bench_function("hilbert_4096_into_16", |b| {
        b.iter(|| hilbert_partition(black_box(&pts), 16))
    });
}

fn bench_cache_sim(c: &mut Criterion) {
    c.bench_function("cache_sim_stream_64k", |b| {
        b.iter_batched(
            || CacheSim::new(4 << 20, 128, 2),
            |mut sim| {
                for i in 0..65_536u64 {
                    if sim.probe(line_tag(0, i % 40_000)) == sas::cache::Probe::Miss {
                        sim.insert(line_tag(0, i % 40_000), 1, false);
                    }
                }
                sim
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_octree, bench_mesh, bench_partitioners, bench_cache_sim
}
criterion_main!(benches);

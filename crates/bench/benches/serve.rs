//! Criterion benchmarks of the serving workload's hot paths:
//!
//! * `hist_record_quantile` — the per-request histogram path in isolation
//!   (one record per iteration batch plus the three quantile reads);
//! * `clients_stream` — drawing one PE's open-loop schedule;
//! * `serve_{mp,shmem,sas}` — one full small serving run per model under
//!   the deterministic schedule on the queued fabric;
//! * `repro_q1_quick` — the whole Q1 experiment cell grid at quick scale
//!   (the wall-clock trajectory the BENCH_serve.json numbers pin);
//! * `repro_q2_quick` — the hot-shard mitigation grid at quick scale
//!   (P=64, skew x mitigation x model on the event core).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use apps::Model;
use machine::{ContentionMode, Machine, MachineConfig};
use o2k_serve::clients;
use o2k_serve::hist::LatencyHist;
use o2k_serve::ServeConfig;
use parallel::SchedPolicy;

fn queued_machine(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(
        p,
        MachineConfig {
            contention: ContentionMode::Queued,
            ..MachineConfig::origin2000()
        },
    ))
}

fn bench_serve(c: &mut Criterion) {
    c.bench_function("hist_record_quantile", |b| {
        let mut h = LatencyHist::new();
        let mut v: u64 = 0x9E37_79B9;
        b.iter(|| {
            // One cheap xorshift keeps the values spread across octaves.
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            h.record(v >> 24);
            h.quantile(0.5) + h.quantile(0.99) + h.quantile(0.999)
        })
    });

    let cfg = ServeConfig::small();
    {
        let cfg = cfg.clone();
        c.bench_function("clients_stream", move |b| {
            b.iter(|| clients::stream(&cfg, 3, 8).len())
        });
    }

    for model in Model::ALL {
        let name = format!("serve_{}", model.name().to_lowercase().replace('-', ""));
        let cfg = cfg.clone();
        c.bench_function(&name, move |b| {
            b.iter(|| {
                o2k_serve::run_sched(queued_machine(8), model, &cfg, Some(SchedPolicy::Det))
                    .sim_time
            })
        });
    }

    c.bench_function("repro_q1_quick", |b| {
        b.iter(|| o2k_bench::run_experiment("q1", true).len())
    });

    c.bench_function("repro_q2_quick", |b| {
        b.iter(|| o2k_bench::run_experiment("q2", true).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);

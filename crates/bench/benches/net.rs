//! Criterion micro-benchmarks of the contended-fabric hot path.
//!
//! Two angles on the `LinkSpan` arena (see `o2k_net::SpanArena`):
//!
//! * `span_sink_*` — the allocation delta in isolation: first-fill of one
//!   million spans into the chunked arena versus a flat growing `Vec`.
//!   The flat `Vec` doubles and copies as it grows; the arena allocates a
//!   fixed chunk every 16 Ki pushes and never moves a span. A second pair
//!   measures the steady state (refill after `clear`), where the arena
//!   recycles chunks and the `Vec` keeps its capacity — the gap there is
//!   bookkeeping only.
//! * `fabric_route_recorded_*` — the delta in context: routing transfers
//!   through a 32-node queued fabric with span recording on, the exact
//!   path `repro --trace` and the hotspot reports exercise.
//! * `fabric_charge_{scalar,batched}_16` — one coherence-protocol charge
//!   run (a line fill plus an invalidation sweep, 16 destinations) priced
//!   as 16 separate `route` calls versus one `try_route_many` walk over
//!   the SoA resource table: the lock-amortisation the `ChargeRun` engine
//!   buys on the CC-SAS hot path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use machine::{MachineConfig, Topology};
use o2k_net::{NetSim, SpanArena};
use o2k_trace::LinkSpan;

const SPANS: usize = 1 << 20;

fn span(i: usize) -> LinkSpan {
    LinkSpan {
        link: (i % 97) as u32,
        t0: i as u64,
        t1: i as u64 + 40,
        bytes: 128,
        pe: (i % 64) as u32,
    }
}

fn bench_span_sink(c: &mut Criterion) {
    c.bench_function("span_sink_arena_first_fill_1m", |b| {
        b.iter_batched(
            SpanArena::default,
            |mut a| {
                for i in 0..SPANS {
                    a.push(black_box(span(i)));
                }
                a
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("span_sink_flatvec_first_fill_1m", |b| {
        b.iter_batched(
            Vec::new,
            |mut v: Vec<LinkSpan>| {
                for i in 0..SPANS {
                    v.push(black_box(span(i)));
                }
                v
            },
            BatchSize::LargeInput,
        )
    });
    // Steady state: capacity already exists on both sides.
    let mut warm_arena = SpanArena::default();
    for i in 0..SPANS {
        warm_arena.push(span(i));
    }
    warm_arena.clear();
    c.bench_function("span_sink_arena_refill_1m", |b| {
        b.iter(|| {
            for i in 0..SPANS {
                warm_arena.push(black_box(span(i)));
            }
            warm_arena.clear();
        })
    });
    let mut warm_vec: Vec<LinkSpan> = Vec::with_capacity(SPANS);
    c.bench_function("span_sink_flatvec_refill_1m", |b| {
        b.iter(|| {
            for i in 0..SPANS {
                warm_vec.push(black_box(span(i)));
            }
            warm_vec.clear();
        })
    });
}

fn bench_fabric_route(c: &mut Criterion) {
    let pes = 64;
    let topo = Topology::new(pes, 2);
    let cfg = MachineConfig::origin2000();
    let nodes = pes / 2;
    for (name, record) in [
        ("fabric_route_64pe_plain", false),
        ("fabric_route_64pe_recorded", true),
    ] {
        c.bench_function(name, |b| {
            let net = NetSim::new(&topo, &cfg);
            net.set_record_spans(record);
            let mut t = 0u64;
            b.iter(|| {
                t += 50;
                let src = (t as usize / 50) % nodes;
                let dst = (src + 7) % nodes;
                black_box(net.route((src * 2) as u32, src, dst, 256, t))
            })
        });
    }
}

fn bench_charge_batch(c: &mut Criterion) {
    let pes = 64;
    let topo = Topology::new(pes, 2);
    let cfg = MachineConfig::origin2000();
    let nodes = pes / 2;
    const RUN: usize = 16;
    c.bench_function("fabric_charge_scalar_16", |b| {
        let net = NetSim::new(&topo, &cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 50;
            let src = (t as usize / 50) % nodes;
            let mut pending = 0u64;
            for i in 0..RUN {
                let dst = (src + 1 + i) % nodes;
                let r = net.route((src * 2) as u32, src, dst, 128, t + pending);
                pending += r.delay;
            }
            black_box(pending)
        })
    });
    c.bench_function("fabric_charge_batched_16", |b| {
        let net = NetSim::new(&topo, &cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 50;
            let src = (t as usize / 50) % nodes;
            let items: Vec<(usize, usize)> =
                (0..RUN).map(|i| ((src + 1 + i) % nodes, 128)).collect();
            black_box(
                net.try_route_many((src * 2) as u32, src, &items, t, true, 0)
                    .unwrap()
                    .delay,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_span_sink,
    bench_fabric_route,
    bench_charge_batch
);
criterion_main!(benches);

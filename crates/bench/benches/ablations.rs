//! Criterion benchmarks of the design-choice ablations DESIGN.md calls
//! out: paging policy, PLUM remapping, partitioning scheme, and the hybrid
//! layout. These time the *simulator* end to end under each variant; the
//! virtual-time consequences live in `repro a1..a5`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use apps::{AmrConfig, NBodyConfig};
use machine::{Machine, MachineConfig};
use sas::PagePolicy;

fn m(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::origin2000()))
}

fn bench_paging(c: &mut Criterion) {
    let cfg = NBodyConfig::small();
    c.bench_function("ablation_nbody_first_touch", |b| {
        b.iter(|| apps::nbody_sas::run_with_paging(m(4), &cfg, PagePolicy::FirstTouch))
    });
    c.bench_function("ablation_nbody_round_robin", |b| {
        b.iter(|| apps::nbody_sas::run_with_paging(m(4), &cfg, PagePolicy::RoundRobin))
    });
}

fn bench_remap(c: &mut Criterion) {
    let with = AmrConfig::small();
    let without = AmrConfig {
        use_remap: false,
        ..AmrConfig::small()
    };
    c.bench_function("ablation_amr_with_remap", |b| {
        b.iter(|| apps::amr_mp::run(m(4), &with))
    });
    c.bench_function("ablation_amr_without_remap", |b| {
        b.iter(|| apps::amr_mp::run(m(4), &without))
    });
}

fn bench_hybrid_layouts(c: &mut Criterion) {
    let am = AmrConfig::small();
    let nb = NBodyConfig::small();
    c.bench_function("ablation_amr_hybrid", |b| {
        b.iter(|| apps::amr_hybrid::run(m(4), &am))
    });
    c.bench_function("ablation_nbody_hybrid", |b| {
        b.iter(|| apps::nbody_hybrid::run(m(4), &nb))
    });
}

fn bench_multilevel(c: &mut Criterion) {
    use mesh::adaptive::AdaptiveMesh;
    use mesh::dual::dual_graph;
    use partition::{multilevel_partition, CsrGraph};
    let mut mesh = AdaptiveMesh::structured(24, 24, 1.0, 1.0);
    let marked: Vec<u32> = mesh.active_tris().into_iter().step_by(4).collect();
    mesh.refine(&marked);
    let dual = dual_graph(&mesh);
    let lists: Vec<Vec<u32>> = (0..dual.len())
        .map(|v| dual.neighbors(v).to_vec())
        .collect();
    let g = CsrGraph::from_lists(&lists, vec![1.0; dual.len()]);
    c.bench_function("ablation_multilevel_partition", |b| {
        b.iter(|| multilevel_partition(&g, 16))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_paging, bench_remap, bench_hybrid_layouts, bench_multilevel
}
criterion_main!(benches);

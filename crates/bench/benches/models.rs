//! Criterion benchmarks of the three programming-model runtimes: how fast
//! the simulator executes their primitives (wall time per simulated
//! operation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use machine::{Machine, MachineConfig};
use mp::{MpWorld, RecvSpec};
use parallel::Team;
use sas::SasWorld;
use shmem::SymWorld;

fn setup(pes: usize) -> (Arc<Machine>, Team) {
    let m = Arc::new(Machine::new(pes, MachineConfig::origin2000()));
    (Arc::clone(&m), Team::new(m))
}

fn bench_mp(c: &mut Criterion) {
    c.bench_function("mp_pingpong_1000", |b| {
        let (m, team) = setup(2);
        let w = MpWorld::new(m);
        b.iter(|| {
            team.run(|ctx| {
                for i in 0..1000u32 {
                    if ctx.pe() == 0 {
                        w.send(ctx, 1, 0, &[i]);
                        let _ = w.recv::<u32>(ctx, RecvSpec::from(1, 1));
                    } else {
                        let (_, _, d) = w.recv::<u32>(ctx, RecvSpec::from(0, 0));
                        w.send(ctx, 0, 1, &d);
                    }
                }
            })
        })
    });
    c.bench_function("mp_allreduce_8pe_100", |b| {
        let (m, team) = setup(8);
        let w = MpWorld::new(m);
        b.iter(|| {
            team.run(|ctx| {
                let mut acc = 0u64;
                for _ in 0..100 {
                    acc += w.allreduce_sum_u64(ctx, vec![1])[0];
                }
                black_box(acc)
            })
        })
    });
}

fn bench_shmem(c: &mut Criterion) {
    c.bench_function("shmem_put_1000x64B", |b| {
        let (m, team) = setup(2);
        let w = SymWorld::new(m);
        b.iter(|| {
            team.run(|ctx| {
                let s = w.alloc::<u64>(ctx, 8 * 1000);
                if ctx.pe() == 0 {
                    for i in 0..1000 {
                        s.put(ctx, 1, 8 * i, &[i as u64; 8]);
                    }
                }
                w.barrier_all(ctx);
            })
        })
    });
    c.bench_function("shmem_fadd_4pe_1000", |b| {
        let (m, team) = setup(4);
        let w = SymWorld::new(m);
        b.iter(|| {
            team.run(|ctx| {
                let s = w.alloc::<u64>(ctx, 1);
                let mut last = 0;
                for _ in 0..1000 {
                    last = s.fadd(ctx, 0, 0, 1u64);
                }
                black_box(last)
            })
        })
    });
}

fn bench_sas(c: &mut Criterion) {
    c.bench_function("sas_shared_sweep_4pe_16k", |b| {
        let (m, team) = setup(4);
        let w = SasWorld::new(m);
        b.iter(|| {
            team.run(|ctx| {
                let s = w.alloc::<f64>(ctx, 16 * 1024);
                let mut pe = w.pe();
                let n = 16 * 1024 / ctx.npes();
                let lo = ctx.pe() * n;
                let mut acc = 0.0;
                for i in lo..lo + n {
                    pe.write(ctx, &s, i, i as f64);
                }
                w.barrier(ctx);
                // Read a neighbour's block: coherence traffic.
                let other = ((ctx.pe() + 1) % ctx.npes()) * n;
                for i in other..other + n {
                    acc += pe.read(ctx, &s, i);
                }
                black_box(acc)
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mp, bench_shmem, bench_sas
}
criterion_main!(benches);

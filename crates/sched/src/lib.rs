//! # o2k-sched — deterministic cooperative scheduling for the substrate
//!
//! The simulator prices every operation in *virtual* nanoseconds, but the
//! seed ran one free-running OS thread per PE: whenever two PEs touched
//! the same coherence state (a directory entry, a first-touch page-home
//! CAS, a self-scheduling cursor), the *host* scheduler decided the
//! order. Checksums were protected by barriers, yet CC-SAS simulated
//! times and the local/remote miss split jittered a few percent run to
//! run (EXPERIMENTS.md's old D3 deviation).
//!
//! This crate replaces free-running threads with **cooperative
//! virtual-time stepping**: the team still spawns one thread per PE, but
//! at most one PE holds the *floor* at a time, and every yield point
//! hands the floor to the runnable PE chosen by a [`SchedPolicy`]:
//!
//! * [`SchedPolicy::Det`] — the runnable PE with the lowest simulated
//!   clock runs next, ties broken by PE id. This is exactly the order a
//!   hardware machine with those timings would exhibit, and it makes
//!   every run bitwise reproducible: simulated times, [`machine`]
//!   counters, traces, page homes, everything.
//! * [`SchedPolicy::Explore`] — seeded uniformly-random choice among
//!   runnable PEs. Each seed is one reproducible interleaving; sweeping
//!   seeds explores the schedule space (the race-hunting harness).
//! * [`SchedPolicy::BoundedPreempt`] — runs virtual-time order but
//!   spends a bounded budget of seeded preemptions, modelling "mostly
//!   fair with a few adversarial switches" (cf. PCT-style probabilistic
//!   concurrency testing).
//! * [`SchedPolicy::Os`] — no floor at all: the seed's free-running
//!   behaviour, kept as an explicit baseline policy.
//!
//! The scheduler itself is a [`CoopSched`]: one mutex-protected table of
//! per-PE states plus one condvar per PE. PEs `register` at spawn (the
//! first pick happens once everyone arrived), `yield_now` at instrumented
//! points, `block`/`unblock` around mailbox and lock waits, rendezvous on
//! `gate_wait` (barriers), and `finish` at the end. A panicking PE
//! `poison`s the scheduler so every blocked peer wakes and unwinds
//! instead of hanging the team.
//!
//! Everything here is *simulation machinery*: it decides host execution
//! order only, and never charges virtual time itself.
//!
//! ## Execution backends
//!
//! The protocol above says nothing about *how* a PE waits for the floor,
//! and that choice is the [`ExecMode`]:
//!
//! * [`ExecMode::Thread`] — one OS thread per PE; a PE without the floor
//!   parks on its condvar. Simple, but a P-PE team costs P stacks of
//!   resident memory and every handoff is a kernel round trip, which
//!   caps practical team sizes near the paper's 64 CPUs.
//! * [`ExecMode::Event`] — every PE is a stackful coroutine
//!   ([`coro`]) on **one** OS thread, driven by a discrete-event loop: a
//!   binary heap keyed on `(virtual clock, PE id)` yields the next PE to
//!   resume, and "waiting for the floor" is a ~20 ns user-space stack
//!   switch. This is the corten-style simulation core that reaches
//!   P=1024 and beyond.
//!
//! Under any cooperative policy at most one PE runs at a time, so the two
//! backends execute the *same* logical schedule: the pick sequence is
//! produced by the same [`CoopSched::hand_off`] code either way, and
//! `det` runs are bitwise identical between backends (enforced by the
//! cross-backend golden tests).

use std::sync::OnceLock;

use machine::SimTime;
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod coro;

/// Panic message used when a PE unwinds because *another* PE panicked or
/// the team deadlocked. [`team`](../parallel) filters these out when
/// picking which payload to propagate, so the original panic surfaces.
pub const POISON_MSG: &str = "o2k-sched: peer PE panicked or team deadlocked";

/// Scheduling policy for a team run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Free-running OS threads (the seed's behaviour). Host interleaving
    /// decides coherence races; CC-SAS timings jitter a few percent.
    Os,
    /// Deterministic virtual-time order: lowest simulated clock runs,
    /// ties to the lowest PE id. Bitwise-reproducible runs.
    Det,
    /// Seeded uniformly-random choice among runnable PEs; each seed is
    /// one reproducible interleaving.
    Explore {
        /// Schedule seed; same seed ⇒ same interleaving.
        seed: u64,
    },
    /// Virtual-time order with up to `budget` seeded preemptions that
    /// each pick a random runnable PE instead.
    BoundedPreempt {
        /// Preemption-point seed.
        seed: u64,
        /// Maximum number of preemptions spent over the whole run.
        budget: u32,
    },
}

impl SchedPolicy {
    /// Parse the `--sched` / `O2K_SCHED` syntax: `os`, `det`,
    /// `explore:<seed>`, `bp:<seed>:<budget>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some(seed) = s.strip_prefix("explore:") {
            let seed = seed
                .parse::<u64>()
                .map_err(|e| format!("bad explore seed {seed:?}: {e}"))?;
            return Ok(SchedPolicy::Explore { seed });
        }
        if let Some(rest) = s.strip_prefix("bp:") {
            let (seed, budget) = rest
                .split_once(':')
                .ok_or_else(|| format!("bp needs <seed>:<budget>, got {rest:?}"))?;
            return Ok(SchedPolicy::BoundedPreempt {
                seed: seed
                    .parse::<u64>()
                    .map_err(|e| format!("bad bp seed {seed:?}: {e}"))?,
                budget: budget
                    .parse::<u32>()
                    .map_err(|e| format!("bad bp budget {budget:?}: {e}"))?,
            });
        }
        match s {
            "os" => Ok(SchedPolicy::Os),
            "det" => Ok(SchedPolicy::Det),
            other => Err(format!(
                "unknown scheduler {other:?} (expected os, det, explore:<seed> or bp:<seed>:<budget>)"
            )),
        }
    }
}

impl std::str::FromStr for SchedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SchedPolicy::parse(s)
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedPolicy::Os => write!(f, "os"),
            SchedPolicy::Det => write!(f, "det"),
            SchedPolicy::Explore { seed } => write!(f, "explore:{seed}"),
            SchedPolicy::BoundedPreempt { seed, budget } => write!(f, "bp:{seed}:{budget}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution backend
// ---------------------------------------------------------------------------

/// How a team's PEs are executed on the host. Orthogonal to
/// [`SchedPolicy`], which decides *which* PE runs next; the exec mode
/// decides what a PE *is* (an OS thread or a coroutine). See the crate
/// docs for the trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One OS thread per PE, condvar handoffs (the pre-event behaviour
    /// and the only mode that supports [`SchedPolicy::Os`]).
    #[default]
    Thread,
    /// One OS thread total: PEs are stackful coroutines resumed by a
    /// binary-heap event loop in virtual-time order.
    Event,
}

impl ExecMode {
    /// Parse the `--exec` / `O2K_EXEC` syntax: `thread` or `event`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "thread" => Ok(ExecMode::Thread),
            "event" => Ok(ExecMode::Event),
            other => Err(format!(
                "unknown exec mode {other:?} (expected thread or event)"
            )),
        }
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExecMode::parse(s)
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Thread => write!(f, "thread"),
            ExecMode::Event => write!(f, "event"),
        }
    }
}

static EXEC_OVERRIDE: std::sync::Mutex<Option<ExecMode>> = std::sync::Mutex::new(None);

fn env_exec() -> ExecMode {
    static ENV: OnceLock<ExecMode> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("O2K_EXEC")
            .ok()
            .and_then(|s| ExecMode::parse(&s).ok())
            .unwrap_or(ExecMode::Thread)
    })
}

/// The exec mode a `Team` uses when none is set explicitly: the last
/// [`set_default_exec`] value, else `O2K_EXEC` from the environment, else
/// [`ExecMode::Thread`].
pub fn default_exec() -> ExecMode {
    let g = EXEC_OVERRIDE.lock().unwrap_or_else(|e| e.into_inner());
    g.unwrap_or_else(env_exec)
}

/// Override the process-wide default exec mode (the `repro` binary's
/// `--exec` flag and the cross-backend test harness).
pub fn set_default_exec(e: ExecMode) {
    *EXEC_OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = Some(e);
}

// ---------------------------------------------------------------------------
// Process-wide default policy
// ---------------------------------------------------------------------------

static OVERRIDE: std::sync::Mutex<Option<SchedPolicy>> = std::sync::Mutex::new(None);

fn env_policy() -> SchedPolicy {
    static ENV: OnceLock<SchedPolicy> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("O2K_SCHED")
            .ok()
            .and_then(|s| SchedPolicy::parse(&s).ok())
            .unwrap_or(SchedPolicy::Os)
    })
}

/// The policy a `Team` uses when none is set explicitly: the last
/// [`set_default_policy`] value, else `O2K_SCHED` from the environment,
/// else [`SchedPolicy::Os`] (the seed's behaviour).
pub fn default_policy() -> SchedPolicy {
    let g = OVERRIDE.lock().unwrap_or_else(|e| e.into_inner());
    g.unwrap_or_else(env_policy)
}

/// Override the process-wide default policy (used by the `repro` binary's
/// `--sched` flag and by test binaries that pin determinism).
pub fn set_default_policy(p: SchedPolicy) {
    *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
}

// ---------------------------------------------------------------------------
// Cooperative scheduler
// ---------------------------------------------------------------------------

/// Why a PE gave up the floor without staying runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting at rendezvous gate `gate` (0 = team-wide, 1+n = node n).
    Gate(usize),
    /// Waiting for a [`SimLock`](../parallel) holder to release.
    Lock,
    /// Waiting for a matching message to arrive in the mailbox.
    Mailbox,
    /// The PE's transfer hit a dead interconnect link with no detour (a
    /// network partition under fault injection). Never unblocked: the PE
    /// parks here so the deadlock detector can report *partition*, not a
    /// logic bug.
    DeadLink,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Unstarted,
    Runnable,
    Running,
    Blocked(BlockReason),
    Done,
}

enum Chooser {
    Det,
    Explore(SmallRng),
    BoundedPreempt { rng: SmallRng, budget: u32 },
}

// ---------------------------------------------------------------------------
// Indexed event heap
// ---------------------------------------------------------------------------

/// `pos` sentinel for a PE with no entry in the [`PeHeap`].
const HEAP_ABSENT: usize = usize::MAX;

/// Fixed-capacity indexed binary min-heap over `(clock, pe)` keys — the
/// event backend's pending-PE set.
///
/// The original event core used `BinaryHeap<Reverse<(clock, pe, stamp)>>`
/// with lazy invalidation: every wake pushed a fresh entry and bumped a
/// per-PE stamp, and stale entries were skipped when they surfaced. At
/// P=1024 a busy run churns millions of short-lived heap entries through
/// the allocator and the heap grows past the live-PE count between
/// compactions. This structure replaces that with two arrays sized once
/// at construction and never reallocated:
///
/// * `heap` — the live `(clock, pe)` entries in binary-heap order; at
///   most one per PE, so capacity `npes` suffices forever.
/// * `pos` — per-PE slot index into `heap` (`HEAP_ABSENT` when the PE has
///   no entry), the classic indexed-heap back-pointer that makes
///   [`PeHeap::remove`] and in-place reschedule O(log P) with *exact*
///   deletion instead of tombstones.
///
/// Keys compare lexicographically, so min order is lowest clock with ties
/// to the lowest PE id — exactly [`SchedPolicy::Det`]'s pick order, which
/// is why [`PeHeap::peek`] never has to skip anything: every entry is
/// live by construction.
#[derive(Debug, Clone)]
pub struct PeHeap {
    heap: Vec<(SimTime, usize)>,
    pos: Vec<usize>,
}

impl PeHeap {
    /// A heap for PEs `0..npes`, with all storage allocated up front.
    pub fn new(npes: usize) -> Self {
        PeHeap {
            heap: Vec::with_capacity(npes),
            pos: vec![HEAP_ABSENT; npes],
        }
    }

    /// Number of PEs currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no PE is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `pe` currently has an entry.
    pub fn contains(&self, pe: usize) -> bool {
        self.pos[pe] != HEAP_ABSENT
    }

    /// The minimum `(clock, pe)` entry, without removing it.
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        self.heap.first().copied()
    }

    /// Schedule `pe` at `clock`, or reschedule it in place if already
    /// present (the decrease/increase-key the lazy design could not do).
    pub fn insert_or_update(&mut self, pe: usize, clock: SimTime) {
        let i = self.pos[pe];
        if i == HEAP_ABSENT {
            self.heap.push((clock, pe));
            let i = self.heap.len() - 1;
            self.pos[pe] = i;
            self.sift_up(i);
        } else {
            let old = self.heap[i].0;
            self.heap[i].0 = clock;
            if clock < old {
                self.sift_up(i);
            } else if clock > old {
                self.sift_down(i);
            }
        }
    }

    /// Remove `pe`'s entry if present; returns whether one was removed.
    /// Tolerates absent PEs so the poison path can sweep any status.
    pub fn remove(&mut self, pe: usize) -> bool {
        let i = self.pos[pe];
        if i == HEAP_ABSENT {
            return false;
        }
        self.pos[pe] = HEAP_ABSENT;
        let last = self.heap.len() - 1;
        if i != last {
            let moved = self.heap[last];
            self.heap[i] = moved;
            self.pos[moved.1] = i;
        }
        self.heap.pop();
        if i < self.heap.len() {
            if i == 0 {
                // Removing the min (every det pick): the bottom-row
                // filler almost always sinks back to a leaf, so take it
                // straight down along the smaller-child spine — one
                // comparison per level — and fix up from there, the same
                // strategy `BinaryHeap::pop` uses.
                self.sift_down_to_bottom(0);
            } else if self.heap[i] < self.heap[(i - 1) / 2] {
                // An arbitrary slot's filler may need to travel either
                // direction.
                self.sift_up(i);
            } else {
                self.sift_down(i);
            }
        }
        true
    }

    // Both sifts move a *hole* instead of swapping pairwise: the element
    // being placed is held in a register and written exactly once, and
    // every displaced entry gets exactly one heap write and one pos
    // write — half the memory traffic of swap-based sifting, which is
    // what this structure races `BinaryHeap`'s hole-based sift against.

    fn sift_up(&mut self, mut i: usize) {
        let item = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if item >= self.heap[parent] {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i].1] = i;
            i = parent;
        }
        self.heap[i] = item;
        self.pos[item.1] = i;
    }

    fn sift_down(&mut self, mut i: usize) {
        let item = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let child = if r < self.heap.len() && self.heap[r] < self.heap[l] {
                r
            } else {
                l
            };
            if item <= self.heap[child] {
                break;
            }
            self.heap[i] = self.heap[child];
            self.pos[self.heap[i].1] = i;
            i = child;
        }
        self.heap[i] = item;
        self.pos[item.1] = i;
    }

    /// Sink the hole at `i` to a leaf along the smaller-child spine
    /// without comparing against the displaced item, then let `sift_up`
    /// find the item's true slot from below.
    fn sift_down_to_bottom(&mut self, mut i: usize) {
        let item = self.heap[i];
        let end = self.heap.len();
        let mut child = 2 * i + 1;
        while child + 1 < end {
            if self.heap[child + 1] < self.heap[child] {
                child += 1;
            }
            self.heap[i] = self.heap[child];
            self.pos[self.heap[i].1] = i;
            i = child;
            child = 2 * i + 1;
        }
        if child < end {
            self.heap[i] = self.heap[child];
            self.pos[self.heap[i].1] = i;
            i = child;
        }
        self.heap[i] = item;
        self.pos[item.1] = i;
        self.sift_up(i);
    }
}

struct Gate {
    members: usize,
    arrived: usize,
}

struct Inner {
    status: Vec<Status>,
    /// Advisory per-PE virtual clocks, refreshed at every yield point.
    clock: Vec<SimTime>,
    registered: usize,
    done: usize,
    poisoned: bool,
    current: Option<usize>,
    chooser: Chooser,
    gates: Vec<Gate>,
    switches: u64,
    fingerprint: u64,
    /// Event backend only — the heap-based det picker and the pending
    /// resume the single-threaded driver consumes. Unused (empty/None)
    /// under the thread backend, whose det picker is the linear scan.
    event: bool,
    /// Pending PEs keyed `(clock, pe)`, exactly the `Runnable` set: PEs
    /// are inserted on wake and removed *exactly* when they leave
    /// `Runnable`, so the top entry is always the det pick with no stale
    /// tombstones to skip and no allocation after construction.
    heap: PeHeap,
    /// The PE the event driver must resume next, set by `hand_off` when
    /// the floor goes to a PE other than the caller.
    next_resume: Option<usize>,
    /// One-shot direct grant consumed by the first `hand_off` after a
    /// [`CoopSched::preseed_resume`]: the floor goes straight to the PE
    /// that held it when the snapshot was taken, with no pick, no
    /// fingerprint update and no switch count — that grant was already
    /// accounted in the run the snapshot came from.
    resume_grant: Option<usize>,
}

impl Inner {
    fn runnable(&self) -> impl Iterator<Item = usize> + '_ {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(p, _)| p)
    }

    /// Transition `pe` to `Runnable` with its clock already final,
    /// scheduling it in the event heap when that backend is active.
    fn make_runnable(&mut self, pe: usize) {
        self.status[pe] = Status::Runnable;
        if self.event {
            self.heap.insert_or_update(pe, self.clock[pe]);
        }
    }

    /// Drop `pe`'s heap entry as it leaves `Runnable` (picked to run, or
    /// force-finished by poison — the latter may find no entry).
    fn leave_runnable(&mut self, pe: usize) {
        if self.event {
            self.heap.remove(pe);
        }
    }

    /// Virtual-time order: lowest clock, ties to the lowest PE id.
    ///
    /// The thread backend scans the status table (P ≤ a few dozen). The
    /// event backend peeks the indexed heap — O(1), since exact removal
    /// keeps every entry live — without consuming the winner:
    /// `BoundedPreempt` may overrule the det base pick, and the chosen
    /// PE's entry is removed when it leaves `Runnable`.
    fn pick_det(&mut self) -> Option<usize> {
        if !self.event {
            return self.runnable().min_by_key(|&p| (self.clock[p], p));
        }
        let picked = self.heap.peek().map(|(c, p)| {
            debug_assert_eq!(self.status[p], Status::Runnable, "heap entry left behind");
            debug_assert_eq!(c, self.clock[p], "heap entry with stale clock");
            let _ = c;
            p
        });
        debug_assert_eq!(
            picked,
            self.runnable().min_by_key(|&p| (self.clock[p], p)),
            "heap pick diverged from the linear-scan reference"
        );
        picked
    }

    /// Pick the next PE to run among the runnable ones, or `None` if
    /// nothing is runnable.
    fn pick(&mut self) -> Option<usize> {
        match &self.chooser {
            Chooser::Det => self.pick_det(),
            Chooser::Explore { .. } => {
                let cands: Vec<usize> = self.runnable().collect();
                if cands.is_empty() {
                    return None;
                }
                let Chooser::Explore(rng) = &mut self.chooser else {
                    unreachable!()
                };
                let i = (rng.next_u64() % cands.len() as u64) as usize;
                Some(cands[i])
            }
            Chooser::BoundedPreempt { .. } => {
                let base = self.pick_det()?;
                let cands: Vec<usize> = self.runnable().collect();
                let Chooser::BoundedPreempt { rng, budget } = &mut self.chooser else {
                    unreachable!()
                };
                if *budget > 0 && cands.len() > 1 && rng.gen_bool(0.25) {
                    *budget -= 1;
                    let i = (rng.next_u64() % cands.len() as u64) as usize;
                    Some(cands[i])
                } else {
                    Some(base)
                }
            }
        }
    }
}

/// Statistics of one scheduled run, read back after the team joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Policy that produced the run.
    pub policy: SchedPolicy,
    /// Number of floor handoffs to a *different* PE.
    pub switches: u64,
    /// FNV-style fingerprint of the whole pick sequence — two runs with
    /// equal fingerprints took the same schedule.
    pub fingerprint: u64,
}

/// Scheduler state captured at a snapshot quiescence point, sufficient to
/// resume a fresh [`CoopSched`] exactly where the captured one stood.
///
/// Exported by the floor-holding PE *after* the snap gate released (so
/// `fingerprint`/`switches` include the release pick and `current` is the
/// exporter itself), and fed to [`CoopSched::preseed_resume`] before any
/// PE registers in the restored team.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedResume {
    /// Policy of the run the snapshot was taken from. A restore under a
    /// *different* policy must use [`CoopSched::preseed_clocks`] instead:
    /// the fingerprint and chooser stream are policy-specific.
    pub policy: SchedPolicy,
    /// Per-PE advisory clocks at the quiescence point.
    pub clocks: Vec<SimTime>,
    /// Pick-sequence fingerprint including the snap-gate release pick.
    pub fingerprint: u64,
    /// Floor switches so far, including the release pick.
    pub switches: u64,
    /// The PE holding the floor after the snap gate — the one the
    /// restored run's first hand_off must grant to directly.
    pub current: usize,
    /// Raw RNG state of a seeded chooser (`Explore`/`BoundedPreempt`);
    /// zero (unused) under `Det`.
    pub rng_state: u64,
    /// Remaining preemption budget of a `BoundedPreempt` chooser; zero
    /// otherwise.
    pub budget: u32,
}

/// The cooperative scheduler shared by one team run. See the crate docs
/// for the protocol.
pub struct CoopSched {
    npes: usize,
    policy: SchedPolicy,
    exec: ExecMode,
    inner: Mutex<Inner>,
    /// One condvar per PE; PE `p` waits on `cvs[p]` until it holds the
    /// floor (or the scheduler is poisoned). Thread backend only — under
    /// [`ExecMode::Event`] a PE without the floor is a suspended
    /// coroutine and nothing ever waits here.
    cvs: Vec<Condvar>,
}

impl CoopSched {
    /// Build a thread-backend scheduler for `npes` PEs. `gate_sizes[0]`
    /// is the team-wide rendezvous size (= `npes`); `gate_sizes[1 + n]`
    /// the PE count of node `n`.
    ///
    /// # Panics
    /// Panics on [`SchedPolicy::Os`] (no scheduler is needed) or an empty
    /// team.
    pub fn new(npes: usize, policy: SchedPolicy, gate_sizes: Vec<usize>) -> Self {
        Self::with_exec(npes, policy, gate_sizes, ExecMode::Thread)
    }

    /// [`Self::new`] with an explicit execution backend.
    pub fn with_exec(
        npes: usize,
        policy: SchedPolicy,
        gate_sizes: Vec<usize>,
        exec: ExecMode,
    ) -> Self {
        assert!(npes > 0, "empty team");
        let chooser = match policy {
            SchedPolicy::Os => panic!("SchedPolicy::Os does not use a CoopSched"),
            SchedPolicy::Det => Chooser::Det,
            SchedPolicy::Explore { seed } => Chooser::Explore(SmallRng::seed_from_u64(seed)),
            SchedPolicy::BoundedPreempt { seed, budget } => Chooser::BoundedPreempt {
                rng: SmallRng::seed_from_u64(seed),
                budget,
            },
        };
        let event = exec == ExecMode::Event;
        CoopSched {
            npes,
            policy,
            exec,
            inner: Mutex::new(Inner {
                status: vec![Status::Unstarted; npes],
                clock: vec![0; npes],
                registered: 0,
                done: 0,
                poisoned: false,
                current: None,
                chooser,
                gates: gate_sizes
                    .into_iter()
                    .map(|members| Gate {
                        members,
                        arrived: 0,
                    })
                    .collect(),
                switches: 0,
                fingerprint: 0xcbf2_9ce4_8422_2325,
                event,
                heap: PeHeap::new(if event { npes } else { 0 }),
                next_resume: None,
                resume_grant: None,
            }),
            cvs: (0..npes).map(|_| Condvar::new()).collect(),
        }
    }

    /// The policy this scheduler runs.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The execution backend this scheduler was built for.
    pub fn exec(&self) -> ExecMode {
        self.exec
    }

    /// Run statistics so far (final once the team joined).
    pub fn stats(&self) -> SchedStats {
        let inner = self.inner.lock();
        SchedStats {
            policy: self.policy,
            switches: inner.switches,
            fingerprint: inner.fingerprint,
        }
    }

    /// Export resumable state at a quiescence point. Must be called by
    /// the PE currently holding the floor, with every other PE runnable
    /// or done (i.e. right after a team-wide gate released) — mid-wait
    /// blocked states are not capturable.
    ///
    /// # Panics
    /// Panics if no PE holds the floor or a PE is blocked.
    pub fn export_resume(&self) -> SchedResume {
        let inner = self.inner.lock();
        let current = inner.current.expect("export_resume: no PE holds the floor");
        assert!(
            !inner
                .status
                .iter()
                .any(|s| matches!(s, Status::Blocked(_) | Status::Unstarted)),
            "export_resume: a PE is blocked or unstarted — not a quiescence point"
        );
        let (rng_state, budget) = match &inner.chooser {
            Chooser::Det => (0, 0),
            Chooser::Explore(rng) => (rng.state(), 0),
            Chooser::BoundedPreempt { rng, budget } => (rng.state(), *budget),
        };
        SchedResume {
            policy: self.policy,
            clocks: inner.clock.clone(),
            fingerprint: inner.fingerprint,
            switches: inner.switches,
            current,
            rng_state,
            budget,
        }
    }

    /// Preseed a fresh scheduler from captured state, before any PE
    /// registers. The first hand_off (triggered by the last registrant)
    /// grants the floor directly to `r.current` with no pick, exactly
    /// replaying the snap-gate release the accumulators already include.
    ///
    /// # Panics
    /// Panics if any PE has registered, the PE counts differ, or the
    /// policy differs from the snapshot's (use
    /// [`Self::preseed_clocks`] to restore under a new policy).
    pub fn preseed_resume(&self, r: &SchedResume) {
        assert_eq!(r.policy, self.policy, "preseed_resume across policies");
        let mut inner = self.inner.lock();
        assert_eq!(inner.registered, 0, "preseed after registration");
        assert_eq!(r.clocks.len(), self.npes, "preseed PE count mismatch");
        inner.clock.copy_from_slice(&r.clocks);
        inner.fingerprint = r.fingerprint;
        inner.switches = r.switches;
        inner.resume_grant = Some(r.current);
        match &mut inner.chooser {
            Chooser::Det => {}
            Chooser::Explore(rng) => *rng = SmallRng::from_state(r.rng_state),
            Chooser::BoundedPreempt { rng, budget } => {
                *rng = SmallRng::from_state(r.rng_state);
                *budget = r.budget;
            }
        }
    }

    /// Clocks-only preseed for restoring a snapshot under a *different*
    /// policy: virtual time carries over, but the pick sequence (and so
    /// the fingerprint, switch count and any chooser RNG stream) starts
    /// fresh — the first registration pick is a normal chooser pick.
    pub fn preseed_clocks(&self, clocks: &[SimTime]) {
        let mut inner = self.inner.lock();
        assert_eq!(inner.registered, 0, "preseed after registration");
        assert_eq!(clocks.len(), self.npes, "preseed PE count mismatch");
        inner.clock.copy_from_slice(clocks);
    }

    /// Hand the floor to the next runnable PE. The caller must already
    /// have moved `pe` out of `Running`. Returns true if the floor went
    /// to a different PE (the caller must then [`Self::wait_for_floor`]
    /// unless it is done).
    fn hand_off(&self, inner: &mut Inner, pe: usize) -> bool {
        // A pending resume grant replays the pick the snapshot already
        // accounted (its fingerprint/switch effects are in the preseeded
        // accumulators), so it bypasses the chooser entirely — including
        // any RNG draw a seeded policy would spend.
        let granted = inner.resume_grant.take();
        let picked = match granted {
            Some(w) => {
                debug_assert_eq!(
                    inner.status[w],
                    Status::Runnable,
                    "resume grant to a PE that is not runnable"
                );
                Some(w)
            }
            None => inner.pick(),
        };
        match picked {
            Some(next) => {
                // Count switches against the previous floor holder, not
                // the caller: during `register` no one holds the floor
                // yet and which thread happens to register last is OS
                // timing, so the initial grant must never count.
                let prev = inner.current;
                inner.leave_runnable(next);
                inner.status[next] = Status::Running;
                inner.current = Some(next);
                if granted.is_none() {
                    inner.fingerprint =
                        (inner.fingerprint ^ next as u64).wrapping_mul(0x0000_0100_0000_01b3);
                    if prev.is_some() && prev != Some(next) {
                        inner.switches += 1;
                    }
                }
                if next == pe {
                    false
                } else {
                    // Grant delivery is the only backend-specific line in
                    // the whole scheduler: wake the winner's parked
                    // thread, or queue it for the event driver to resume.
                    if inner.event {
                        debug_assert!(
                            inner.next_resume.is_none(),
                            "two floor grants pending at once"
                        );
                        inner.next_resume = Some(next);
                    } else {
                        self.cvs[next].notify_all();
                    }
                    true
                }
            }
            None => {
                inner.current = None;
                if inner.done < self.npes {
                    // Nothing runnable but PEs remain: the team deadlocked
                    // (mismatched barriers, lock cycle, missing send).
                    let diag: Vec<String> = inner
                        .status
                        .iter()
                        .enumerate()
                        .map(|(p, s)| format!("PE {p}: {s:?} @ {} ns", inner.clock[p]))
                        .collect();
                    inner.poisoned = true;
                    for cv in &self.cvs {
                        cv.notify_all();
                    }
                    // A PE parked on a dead interconnect link means the
                    // fault plan partitioned the machine — that is the
                    // injected fault working as specified, not mismatched
                    // barriers or a lock cycle. Say so.
                    let partitioned = inner
                        .status
                        .contains(&Status::Blocked(BlockReason::DeadLink));
                    if partitioned {
                        panic!(
                            "network partition: PE(s) blocked on a dead interconnect link, \
                             not a logic deadlock ({} of {} done)\n  {}",
                            inner.done,
                            self.npes,
                            diag.join("\n  ")
                        );
                    }
                    panic!(
                        "cooperative scheduler deadlock: no runnable PE ({} of {} done)\n  {}",
                        inner.done,
                        self.npes,
                        diag.join("\n  ")
                    );
                }
                true
            }
        }
    }

    /// Wait until `pe` holds the floor (or panic if poisoned).
    fn wait_for_floor<'a>(&'a self, mut inner: parking_lot::MutexGuard<'a, Inner>, pe: usize) {
        loop {
            if inner.poisoned {
                drop(inner);
                panic!("{POISON_MSG}");
            }
            if inner.status[pe] == Status::Running {
                return;
            }
            if self.exec == ExecMode::Event {
                // Suspend this PE's coroutine; the driver resumes it once
                // a hand_off grants it the floor (or poison makes the
                // re-check above unwind it). Never suspend holding the
                // scheduler lock — the driver and the granted PE need it.
                drop(inner);
                coro::yield_current();
                inner = self.inner.lock();
            } else {
                self.cvs[pe].wait(&mut inner);
            }
        }
    }

    /// Called once per PE at thread start. Blocks until all PEs have
    /// registered and this PE is picked to run.
    pub fn register(&self, pe: usize) {
        let mut inner = self.inner.lock();
        assert_eq!(
            inner.status[pe],
            Status::Unstarted,
            "PE {pe} registered twice"
        );
        inner.make_runnable(pe);
        inner.registered += 1;
        if inner.registered == self.npes && !self.hand_off(&mut inner, pe) {
            return;
        }
        self.wait_for_floor(inner, pe);
    }

    /// Yield point: refresh `pe`'s clock and offer the floor. Returns
    /// true if another PE ran in between (a real handoff).
    pub fn yield_now(&self, pe: usize, clock: SimTime) -> bool {
        let mut inner = self.inner.lock();
        inner.clock[pe] = clock;
        inner.make_runnable(pe);
        if self.hand_off(&mut inner, pe) {
            self.wait_for_floor(inner, pe);
            true
        } else {
            false
        }
    }

    /// Give up the floor until [`Self::unblock`] is called with the same
    /// `reason` class (`Lock` or `Mailbox`). Spurious wakeups are
    /// possible; callers re-check their condition in a loop.
    pub fn block(&self, pe: usize, clock: SimTime, reason: BlockReason) {
        let mut inner = self.inner.lock();
        inner.clock[pe] = clock;
        inner.status[pe] = Status::Blocked(reason);
        self.hand_off(&mut inner, pe);
        self.wait_for_floor(inner, pe);
    }

    /// Make `pe` runnable again if it is blocked for `reason`. `hint` is
    /// the virtual time of the enabling event (message arrival, lock
    /// release): the sleeper's advisory clock is raised to it so the
    /// deterministic chooser orders the wakeup faithfully. Called by the
    /// floor holder; does not yield.
    pub fn unblock(&self, pe: usize, hint: SimTime, reason: BlockReason) {
        let mut inner = self.inner.lock();
        if inner.status[pe] == Status::Blocked(reason) {
            inner.clock[pe] = inner.clock[pe].max(hint);
            inner.make_runnable(pe);
        }
    }

    /// Rendezvous on gate `gate` (0 = team-wide, 1+n = node n): block
    /// until every member has arrived; the last arriver releases all and
    /// re-enters the normal pick order.
    pub fn gate_wait(&self, gate: usize, pe: usize, clock: SimTime) {
        let mut inner = self.inner.lock();
        inner.clock[pe] = clock;
        inner.gates[gate].arrived += 1;
        if inner.gates[gate].arrived == inner.gates[gate].members {
            inner.gates[gate].arrived = 0;
            for q in 0..self.npes {
                if inner.status[q] == Status::Blocked(BlockReason::Gate(gate)) {
                    inner.make_runnable(q);
                }
            }
            inner.make_runnable(pe);
        } else {
            inner.status[pe] = Status::Blocked(BlockReason::Gate(gate));
        }
        if self.hand_off(&mut inner, pe) {
            self.wait_for_floor(inner, pe);
        }
    }

    /// Called when `pe`'s program function returns. Hands the floor on
    /// without waiting; the thread is free to finalise its report.
    pub fn finish(&self, pe: usize, clock: SimTime) {
        let mut inner = self.inner.lock();
        inner.clock[pe] = clock;
        inner.status[pe] = Status::Done;
        inner.done += 1;
        if inner.done < self.npes {
            self.hand_off(&mut inner, pe);
        } else {
            inner.current = None;
        }
    }

    /// Called from a panicking PE's unwind path: wake everyone so blocked
    /// peers raise [`POISON_MSG`] panics instead of hanging the join.
    pub fn poison(&self, pe: usize) {
        let mut inner = self.inner.lock();
        if inner.status[pe] != Status::Done {
            inner.leave_runnable(pe);
            inner.status[pe] = Status::Done;
            inner.done += 1;
        }
        inner.poisoned = true;
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    // -- Event-driver interface ---------------------------------------------
    //
    // Under [`ExecMode::Event`] one plain loop on the team's only thread
    // drives everything (see `parallel::team`): resume each PE coroutine
    // once so it registers, then repeatedly resume whichever PE the last
    // hand_off granted the floor to. These two accessors are that loop's
    // entire view of the scheduler.

    /// Take the pending floor grant, if any. `None` means no PE is
    /// waiting to be resumed: either the currently-running PE kept the
    /// floor, or the team is finished (or poisoned — check
    /// [`Self::is_poisoned`]).
    pub fn event_take_next(&self) -> Option<usize> {
        self.inner.lock().next_resume.take()
    }

    /// Whether a PE panicked or a deadlock was detected. The event driver
    /// polls this to know it must unwind the surviving coroutines.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn policy_parse_roundtrip() {
        for p in [
            SchedPolicy::Os,
            SchedPolicy::Det,
            SchedPolicy::Explore { seed: 42 },
            SchedPolicy::BoundedPreempt {
                seed: 7,
                budget: 100,
            },
        ] {
            assert_eq!(SchedPolicy::parse(&p.to_string()), Ok(p));
        }
        assert!(SchedPolicy::parse("explore:").is_err());
        assert!(SchedPolicy::parse("bp:1").is_err());
        assert!(SchedPolicy::parse("fifo").is_err());
    }

    /// The indexed heap against a brute-force reference: random
    /// insert/update/remove streams must keep the peek equal to the
    /// linear-scan minimum and the back-pointers consistent.
    #[test]
    fn pe_heap_matches_linear_reference() {
        let npes = 37;
        let mut heap = PeHeap::new(npes);
        let mut reference: Vec<Option<SimTime>> = vec![None; npes];
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        for _ in 0..20_000 {
            let pe = (rng.next_u64() % npes as u64) as usize;
            match rng.next_u64() % 3 {
                0 | 1 => {
                    let clock = rng.next_u64() % 1000;
                    heap.insert_or_update(pe, clock);
                    reference[pe] = Some(clock);
                }
                _ => {
                    let removed = heap.remove(pe);
                    assert_eq!(removed, reference[pe].is_some());
                    reference[pe] = None;
                }
            }
            let want = reference
                .iter()
                .enumerate()
                .filter_map(|(p, c)| c.map(|c| (c, p)))
                .min();
            assert_eq!(heap.peek(), want);
            assert_eq!(heap.len(), reference.iter().flatten().count());
            for (p, c) in reference.iter().enumerate() {
                assert_eq!(heap.contains(p), c.is_some());
            }
        }
    }

    /// Drive a scheduler from real threads: each PE appends its id to a
    /// shared log at every step, with per-step virtual clocks chosen so
    /// Det has a unique correct order.
    fn run_logged(policy: SchedPolicy, npes: usize, steps: usize) -> (Vec<usize>, SchedStats) {
        let sched = Arc::new(CoopSched::new(npes, policy, vec![npes]));
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for pe in 0..npes {
                let sched = Arc::clone(&sched);
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    sched.register(pe);
                    let mut clock = 0u64;
                    for step in 0..steps {
                        log.lock().push(pe);
                        // Distinct increments ⇒ a unique min-clock order.
                        clock += 10 + (pe as u64) + (step as u64 % 3);
                        sched.yield_now(pe, clock);
                    }
                    sched.finish(pe, clock);
                });
            }
        });
        let stats = sched.stats();
        (Arc::try_unwrap(log).unwrap().into_inner(), stats)
    }

    /// The same logged workload as [`run_logged`], but on the event
    /// backend: one coroutine per PE, driven by the minimal event loop
    /// the `parallel` team driver also implements.
    fn run_logged_event(
        policy: SchedPolicy,
        npes: usize,
        steps: usize,
    ) -> (Vec<usize>, SchedStats) {
        let sched = Arc::new(CoopSched::with_exec(
            npes,
            policy,
            vec![npes],
            ExecMode::Event,
        ));
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut coros: Vec<coro::Coro> = (0..npes)
            .map(|pe| {
                let sched = Arc::clone(&sched);
                let log = std::rc::Rc::clone(&log);
                coro::Coro::new(256 * 1024, move || {
                    sched.register(pe);
                    let mut clock = 0u64;
                    for step in 0..steps {
                        log.borrow_mut().push(pe);
                        clock += 10 + (pe as u64) + (step as u64 % 3);
                        sched.yield_now(pe, clock);
                    }
                    sched.finish(pe, clock);
                })
            })
            .collect();
        for c in &mut coros {
            c.resume();
        }
        while let Some(p) = sched.event_take_next() {
            coros[p].resume();
        }
        assert!(coros.iter().all(|c| c.finished()), "driver exited early");
        let stats = sched.stats();
        drop(coros);
        (std::rc::Rc::try_unwrap(log).unwrap().into_inner(), stats)
    }

    #[test]
    fn det_schedule_is_reproducible_and_virtual_time_ordered() {
        let (a, sa) = run_logged(SchedPolicy::Det, 4, 20);
        let (b, sb) = run_logged(SchedPolicy::Det, 4, 20);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // First picks happen at clock 0 for everyone: PE order by id.
        assert_eq!(&a[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn explore_seeds_differ_but_each_is_reproducible() {
        let (a1, s1) = run_logged(SchedPolicy::Explore { seed: 1 }, 3, 30);
        let (a2, _) = run_logged(SchedPolicy::Explore { seed: 1 }, 3, 30);
        let (b, s2) = run_logged(SchedPolicy::Explore { seed: 2 }, 3, 30);
        assert_eq!(a1, a2, "same seed must replay the same schedule");
        assert_ne!(s1.fingerprint, s2.fingerprint, "different seeds explore");
        assert_ne!(a1, b);
    }

    #[test]
    fn bounded_preempt_with_zero_budget_is_det() {
        let (a, _) = run_logged(SchedPolicy::Det, 4, 25);
        let (b, _) = run_logged(SchedPolicy::BoundedPreempt { seed: 9, budget: 0 }, 4, 25);
        assert_eq!(a, b);
    }

    #[test]
    fn floor_is_exclusive() {
        // A counter that would be racy under real parallelism: each PE
        // does read-modify-write with a yield in the middle. Under the
        // cooperative floor the interleaving is serialised at yield
        // points only, so the Det schedule gives a deterministic result.
        let npes = 4;
        let sched = Arc::new(CoopSched::new(npes, SchedPolicy::Det, vec![npes]));
        let cell = Arc::new(AtomicU64::new(0));
        let in_crit = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for pe in 0..npes {
                let sched = Arc::clone(&sched);
                let cell = Arc::clone(&cell);
                let in_crit = Arc::clone(&in_crit);
                scope.spawn(move || {
                    sched.register(pe);
                    for i in 0..50u64 {
                        // No other PE may be between these two fences.
                        assert_eq!(in_crit.fetch_add(1, Ordering::SeqCst), 0);
                        cell.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(in_crit.fetch_sub(1, Ordering::SeqCst), 1);
                        sched.yield_now(pe, (pe as u64 + 1) * 7 + i * 13);
                    }
                    sched.finish(pe, u64::MAX);
                });
            }
        });
        assert_eq!(cell.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn gates_release_only_when_all_arrive() {
        let npes = 3;
        let sched = Arc::new(CoopSched::new(npes, SchedPolicy::Det, vec![npes]));
        let phase = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for pe in 0..npes {
                let sched = Arc::clone(&sched);
                let phase = Arc::clone(&phase);
                scope.spawn(move || {
                    sched.register(pe);
                    for round in 1..=5u64 {
                        phase.fetch_add(1, Ordering::SeqCst);
                        sched.gate_wait(0, pe, round * 100 + pe as u64);
                        // Everyone must have bumped the phase before any
                        // PE proceeds past the gate.
                        assert_eq!(phase.load(Ordering::SeqCst), round * npes as u64);
                        sched.gate_wait(0, pe, round * 100 + 50 + pe as u64);
                    }
                    sched.finish(pe, u64::MAX);
                });
            }
        });
    }

    #[test]
    fn block_unblock_wrong_reason_is_ignored() {
        let sched = Arc::new(CoopSched::new(2, SchedPolicy::Det, vec![2]));
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    sched.register(0);
                    order.lock().push("pe0-blocking");
                    sched.block(0, 0, BlockReason::Mailbox);
                    order.lock().push("pe0-woke");
                    sched.finish(0, 10);
                });
            }
            {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    sched.register(1);
                    // Wrong class: must not wake PE 0.
                    sched.unblock(0, 5, BlockReason::Lock);
                    sched.yield_now(1, 1);
                    order.lock().push("pe1-sent");
                    sched.unblock(0, 5, BlockReason::Mailbox);
                    sched.yield_now(1, 2);
                    sched.finish(1, 10);
                });
            }
        });
        let order = order.lock().clone();
        let woke = order.iter().position(|s| *s == "pe0-woke").unwrap();
        let sent = order.iter().position(|s| *s == "pe1-sent").unwrap();
        assert!(sent < woke, "PE 0 woke before the real unblock: {order:?}");
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let sched = Arc::new(CoopSched::new(2, SchedPolicy::Det, vec![2]));
        let result = std::thread::scope(|scope| {
            let h0 = {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    sched.register(0);
                    // Block forever: nobody will ever unblock us.
                    sched.block(0, 0, BlockReason::Mailbox);
                })
            };
            let h1 = {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    sched.register(1);
                    sched.block(1, 0, BlockReason::Lock);
                })
            };
            (h0.join(), h1.join())
        });
        assert!(
            result.0.is_err() && result.1.is_err(),
            "both PEs must unwind"
        );
    }

    #[test]
    fn dead_link_blocks_classify_as_partition() {
        let sched = Arc::new(CoopSched::new(2, SchedPolicy::Det, vec![2]));
        let (r0, r1) = std::thread::scope(|scope| {
            let h0 = {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    sched.register(0);
                    // As Ctx does when try_route returns Unreachable.
                    sched.block(0, 0, BlockReason::DeadLink);
                })
            };
            let h1 = {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    sched.register(1);
                    sched.block(1, 0, BlockReason::Mailbox);
                })
            };
            (h0.join(), h1.join())
        });
        let msgs: Vec<String> = [r0, r1]
            .into_iter()
            .map(|r| {
                let p = r.expect_err("both PEs unwind");
                p.downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default()
            })
            .collect();
        // Exactly one PE raises the classifying panic; the other gets the
        // poison message. The classifier must say partition, not deadlock.
        let diag = msgs
            .iter()
            .find(|m| *m != POISON_MSG)
            .expect("one PE carries the diagnostic");
        assert!(diag.contains("network partition"), "{diag}");
        assert!(!diag.contains("cooperative scheduler deadlock"), "{diag}");
        assert!(diag.contains("DeadLink"), "{diag}");
    }

    #[test]
    fn poison_wakes_blocked_peers() {
        let sched = Arc::new(CoopSched::new(2, SchedPolicy::Det, vec![2]));
        let (r0, r1) = std::thread::scope(|scope| {
            let h0 = {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    sched.register(0);
                    sched.block(0, 0, BlockReason::Mailbox);
                })
            };
            let h1 = {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    sched.register(1);
                    sched.poison(1); // as a panicking PE's unwind would
                })
            };
            (h0.join(), h1.join())
        });
        assert!(r0.is_err(), "blocked peer must unwind after poison");
        assert!(r1.is_ok());
    }

    #[test]
    fn exec_mode_parse_roundtrip() {
        for e in [ExecMode::Thread, ExecMode::Event] {
            assert_eq!(ExecMode::parse(&e.to_string()), Ok(e));
        }
        assert!(ExecMode::parse("fiber").is_err());
    }

    #[test]
    fn event_backend_replays_the_thread_backend_det_schedule() {
        let (a, sa) = run_logged(SchedPolicy::Det, 4, 20);
        let (b, sb) = run_logged_event(SchedPolicy::Det, 4, 20);
        assert_eq!(a, b, "pick sequences must be identical across backends");
        assert_eq!(sa.fingerprint, sb.fingerprint);
        assert_eq!(sa.switches, sb.switches);
    }

    #[test]
    fn event_backend_replays_seeded_policies_too() {
        for policy in [
            SchedPolicy::Explore { seed: 11 },
            SchedPolicy::BoundedPreempt { seed: 5, budget: 6 },
        ] {
            let (a, sa) = run_logged(policy, 3, 30);
            let (b, sb) = run_logged_event(policy, 3, 30);
            assert_eq!(a, b, "{policy} diverged across backends");
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn event_backend_scales_to_1024_pes() {
        // The point of the backend: a P=1024 team on one OS thread. Two
        // steps each keeps it a smoke test, not a benchmark.
        let (log, stats) = run_logged_event(SchedPolicy::Det, 1024, 2);
        assert_eq!(log.len(), 1024 * 2);
        // First sweep is clock-0 ties broken by PE id.
        assert!(log[..1024].iter().copied().eq(0..1024));
        assert!(stats.switches > 0);
    }

    #[test]
    fn event_backend_detects_deadlock_and_unwinds_all_coroutines() {
        let sched = Arc::new(CoopSched::with_exec(
            2,
            SchedPolicy::Det,
            vec![2],
            ExecMode::Event,
        ));
        let mut coros: Vec<coro::Coro> = (0..2)
            .map(|pe| {
                let sched = Arc::clone(&sched);
                coro::Coro::new(256 * 1024, move || {
                    sched.register(pe);
                    let reason = if pe == 0 {
                        BlockReason::Mailbox
                    } else {
                        BlockReason::Lock
                    };
                    sched.block(pe, 0, reason); // nobody will unblock us
                })
            })
            .collect();
        for c in &mut coros {
            if !sched.is_poisoned() {
                c.resume();
            }
        }
        while !sched.is_poisoned() {
            match sched.event_take_next() {
                Some(p) => {
                    coros[p].resume();
                }
                None => break,
            }
        }
        assert!(sched.is_poisoned(), "deadlock must poison the scheduler");
        // Unwind the survivors so their stacks are cleanly dropped.
        for c in &mut coros {
            if c.started() && !c.finished() {
                c.resume();
            }
        }
        let msgs: Vec<String> = coros
            .iter_mut()
            .filter_map(|c| c.take_panic())
            .map(|p| {
                p.downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default()
            })
            .collect();
        assert_eq!(msgs.len(), 2, "both PEs unwind");
        let diag = msgs
            .iter()
            .find(|m| *m != POISON_MSG)
            .expect("one PE carries the diagnostic");
        assert!(diag.contains("cooperative scheduler deadlock"), "{diag}");
    }

    #[test]
    fn preseed_resume_replays_the_tail_of_a_straight_run() {
        // A two-phase workload with a mid-run gate: the straight run
        // exports resumable state right after the gate; a second team
        // preseeded from it must replay phase 2 pick-for-pick and land on
        // the same final fingerprint and switch count.
        for policy in [
            SchedPolicy::Det,
            SchedPolicy::Explore { seed: 3 },
            SchedPolicy::BoundedPreempt { seed: 5, budget: 4 },
        ] {
            let npes = 3;
            let steps = 10usize;
            let clock_at = |pe: usize, step: usize| (step as u64 + 1) * 10 + pe as u64 * 3;

            let sched = Arc::new(CoopSched::new(npes, policy, vec![npes]));
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let resume = Arc::new(parking_lot::Mutex::new(None));
            std::thread::scope(|scope| {
                for pe in 0..npes {
                    let sched = Arc::clone(&sched);
                    let log = Arc::clone(&log);
                    let resume = Arc::clone(&resume);
                    scope.spawn(move || {
                        sched.register(pe);
                        for step in 0..steps {
                            log.lock().push((1u8, pe));
                            sched.yield_now(pe, clock_at(pe, step));
                        }
                        sched.gate_wait(0, pe, clock_at(pe, steps));
                        // First PE past the gate is the floor holder: the
                        // only place export_resume is legal.
                        {
                            let mut r = resume.lock();
                            if r.is_none() {
                                *r = Some(sched.export_resume());
                            }
                        }
                        for step in steps..2 * steps {
                            log.lock().push((2u8, pe));
                            sched.yield_now(pe, clock_at(pe, step + 1));
                        }
                        sched.finish(pe, u64::MAX);
                    });
                }
            });
            let straight = sched.stats();
            let straight_tail: Vec<usize> = log
                .lock()
                .iter()
                .filter(|(phase, _)| *phase == 2)
                .map(|(_, pe)| *pe)
                .collect();
            let resume = resume.lock().take().expect("floor holder exported");
            assert_eq!(resume.clocks.len(), npes);

            let sched2 = Arc::new(CoopSched::new(npes, policy, vec![npes]));
            sched2.preseed_resume(&resume);
            let log2 = Arc::new(parking_lot::Mutex::new(Vec::new()));
            std::thread::scope(|scope| {
                for pe in 0..npes {
                    let sched2 = Arc::clone(&sched2);
                    let log2 = Arc::clone(&log2);
                    scope.spawn(move || {
                        sched2.register(pe);
                        for step in steps..2 * steps {
                            log2.lock().push(pe);
                            sched2.yield_now(pe, clock_at(pe, step + 1));
                        }
                        sched2.finish(pe, u64::MAX);
                    });
                }
            });
            let resumed = sched2.stats();
            assert_eq!(
                log2.lock().clone(),
                straight_tail,
                "{policy}: resumed tail diverged from the straight run"
            );
            assert_eq!(resumed.fingerprint, straight.fingerprint, "{policy}");
            assert_eq!(resumed.switches, straight.switches, "{policy}");
        }
    }

    #[test]
    fn default_policy_env_fallback_is_os_or_env() {
        // Cannot assert a specific value (the CI matrix sets O2K_SCHED),
        // but the override must win over everything.
        set_default_policy(SchedPolicy::Explore { seed: 3 });
        assert_eq!(default_policy(), SchedPolicy::Explore { seed: 3 });
        set_default_policy(SchedPolicy::Os);
        assert_eq!(default_policy(), SchedPolicy::Os);
    }
}

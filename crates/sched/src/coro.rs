//! Minimal stackful coroutines for the single-threaded event backend.
//!
//! [`ExecMode::Event`](crate::ExecMode::Event) runs every PE of a team as
//! a resumable task on one OS thread. Each task needs its own call stack —
//! the PE bodies are arbitrary deep-recursing application code, not state
//! machines — so this module vendors the one primitive the standard
//! library does not offer: a user-space stack switch.
//!
//! The design is the classic asymmetric coroutine:
//!
//! * [`Coro::resume`] switches from the driver onto the task's stack
//!   (first entering through a bootstrap frame that `ret`s into
//!   [`trampoline`], later returning into whatever [`yield_current`]
//!   frame the task suspended in);
//! * [`yield_current`] switches from the task back to whoever resumed it.
//!
//! The switch itself (`o2k_coro_switch`) saves the callee-saved register
//! set on the current stack, publishes the stack pointer, and restores the
//! target's — ~20 ns, against the microseconds a condvar handoff between
//! parked OS threads costs. Caller-saved registers need no saving: from
//! the compiler's point of view the switch is an ordinary `extern "C"`
//! call that eventually returns.
//!
//! Panics never unwind across a switch: the task's panic runs down its own
//! stack into the `catch_unwind` in [`trampoline`], is parked as a
//! payload, and the driver decides what to propagate — mirroring what
//! `JoinHandle::join` gives the thread backend.
//!
//! Stacks are heap allocations (lazily committed by the OS, so a
//! 1024-task team costs address space, not resident memory) without guard
//! pages; the default [`STACK_BYTES`] matches the 2 MiB Rust gives spawned
//! threads and can be raised with `O2K_STACK_KB`.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default per-task stack size. Task stacks are plain heap allocations
/// with no guard page, so an overflow corrupts the heap silently rather
/// than faulting — the default leaves generous headroom instead.
/// Unoptimized frames are several times fatter than release ones (the
/// deep CC-SAS line-access paths overflow 2 MiB under debug
/// assertions), so debug builds get 16 MiB where release builds get
/// 4 MiB. Untouched pages cost address space, not memory. Override
/// with `O2K_STACK_KB`.
pub const STACK_BYTES: usize = if cfg!(debug_assertions) {
    16 * 1024 * 1024
} else {
    4 * 1024 * 1024
};

/// Per-task stack size: `O2K_STACK_KB` (in KiB, min 64) or
/// [`STACK_BYTES`].
pub fn stack_bytes() -> usize {
    static SIZE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("O2K_STACK_KB")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|kb| kb.max(64) * 1024)
            .unwrap_or(STACK_BYTES)
    })
}

/// Whether this build carries a stack switch for the host architecture.
/// On unsupported targets [`Coro::new`] panics and
/// [`ExecMode::Event`](crate::ExecMode::Event) is unavailable.
pub const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

// ---------------------------------------------------------------------------
// The stack switch
// ---------------------------------------------------------------------------

// x86-64 SysV: save rbp/rbx/r12-r15 plus the MXCSR and x87 control words
// (the only floating-point state the ABI makes callee-saved), publish rsp
// through `save`, adopt `target`, restore, return. A bootstrap frame makes
// the first restore `ret` into `trampoline` (see `Coro::new` for the
// layout, which must match this save order exactly).
#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    r#"
    .text
    .p2align 4
    .globl o2k_coro_switch
    .hidden o2k_coro_switch
o2k_coro_switch:
    push rbp
    push rbx
    push r12
    push r13
    push r14
    push r15
    sub rsp, 8
    stmxcsr [rsp]
    fnstcw  [rsp + 4]
    mov [rdi], rsp
    mov rsp, rsi
    ldmxcsr [rsp]
    fldcw   [rsp + 4]
    add rsp, 8
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbx
    pop rbp
    ret
"#
);

// AArch64 AAPCS64: x19-x28, the frame pointer/link register pair, and the
// low halves of v8-v15 are callee-saved. `ret` branches to the restored
// x30, which the bootstrap frame points at `trampoline`.
#[cfg(target_arch = "aarch64")]
std::arch::global_asm!(
    r#"
    .text
    .p2align 4
    .globl o2k_coro_switch
    .hidden o2k_coro_switch
o2k_coro_switch:
    sub sp, sp, #160
    stp x19, x20, [sp, #0]
    stp x21, x22, [sp, #16]
    stp x23, x24, [sp, #32]
    stp x25, x26, [sp, #48]
    stp x27, x28, [sp, #64]
    stp x29, x30, [sp, #80]
    stp d8,  d9,  [sp, #96]
    stp d10, d11, [sp, #112]
    stp d12, d13, [sp, #128]
    stp d14, d15, [sp, #144]
    mov x9, sp
    str x9, [x0]
    mov sp, x1
    ldp x19, x20, [sp, #0]
    ldp x21, x22, [sp, #16]
    ldp x23, x24, [sp, #32]
    ldp x25, x26, [sp, #48]
    ldp x27, x28, [sp, #64]
    ldp x29, x30, [sp, #80]
    ldp d8,  d9,  [sp, #96]
    ldp d10, d11, [sp, #112]
    ldp d12, d13, [sp, #128]
    ldp d14, d15, [sp, #144]
    add sp, sp, #160
    ret
"#
);

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
extern "C" {
    /// Save the current continuation's stack pointer into `*save`, switch
    /// to the continuation whose stack pointer is `target`, and return
    /// when something switches back here.
    fn o2k_coro_switch(save: *mut *mut u8, target: *mut u8);
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[allow(clippy::missing_safety_doc)]
unsafe fn o2k_coro_switch(_save: *mut *mut u8, _target: *mut u8) {
    unreachable!("ExecMode::Event has no stack switch for this architecture");
}

// ---------------------------------------------------------------------------
// Coroutine objects
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Created; the entry closure has not run yet.
    New,
    /// Suspended inside [`yield_current`] (or the bootstrap frame).
    Suspended,
    /// Currently on its own stack (between resume and yield/finish).
    Running,
    /// The entry closure returned or panicked; never resumable again.
    Finished,
}

/// 16-byte-aligned heap allocation serving as a task stack.
struct StackMem {
    base: *mut u8,
    layout: std::alloc::Layout,
}

impl StackMem {
    fn new(bytes: usize) -> Self {
        let layout = std::alloc::Layout::from_size_align(bytes, 16).expect("stack layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { std::alloc::alloc(layout) };
        assert!(!base.is_null(), "coroutine stack allocation failed");
        StackMem { base, layout }
    }

    /// One-past-the-end of the stack (stacks grow down), 16-aligned.
    fn top(&self) -> *mut u8 {
        // SAFETY: base + size stays within (one past) the allocation.
        unsafe { self.base.add(self.layout.size()) }
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        // SAFETY: allocated with this exact layout in `new`.
        unsafe { std::alloc::dealloc(self.base, self.layout) }
    }
}

/// The part of a coroutine both sides of a switch need at a stable
/// address (boxed by [`Coro`]); the thread-local [`CURRENT`] points here
/// while the task runs.
struct Inner {
    /// Owns the stack allocation for the task's lifetime; only the raw
    /// pointers below ever read it after construction.
    _stack: StackMem,
    state: State,
    /// The task's saved stack pointer while it is not running.
    task_sp: *mut u8,
    /// The resumer's saved stack pointer while the task runs.
    resumer_sp: *mut u8,
    /// Entry closure; taken by the trampoline on first resume. The
    /// lifetime is erased to `'static` here and policed by `Coro<'a>`.
    entry: Option<Box<dyn FnOnce()>>,
    /// Parked panic payload if the entry closure unwound.
    panic: Option<Box<dyn Any + Send + 'static>>,
}

thread_local! {
    /// The coroutine currently running on this thread, if any.
    static CURRENT: Cell<*mut Inner> = const { Cell::new(std::ptr::null_mut()) };
}

/// Entry point of every task, reached by the first resume's `ret` through
/// the bootstrap frame. Runs the closure under `catch_unwind`, parks any
/// panic payload, and switches back to the resumer for the last time.
extern "C" fn trampoline() -> ! {
    // SAFETY: resume() set CURRENT to this task's Inner just before
    // switching here, and the Inner outlives the task (Coro owns it).
    let inner = unsafe { &mut *CURRENT.with(|c| c.get()) };
    let entry = inner.entry.take().expect("task entered twice");
    if let Err(payload) = catch_unwind(AssertUnwindSafe(entry)) {
        inner.panic = Some(payload);
    }
    inner.state = State::Finished;
    // SAFETY: resumer_sp was saved by the resume that (re)entered us.
    unsafe { o2k_coro_switch(&mut inner.task_sp, inner.resumer_sp) };
    unreachable!("a finished coroutine was resumed");
}

/// Words the bootstrap frame occupies below the stack top; must mirror the
/// restore half of `o2k_coro_switch`.
#[cfg(target_arch = "x86_64")]
fn bootstrap(stack_top: *mut u8) -> *mut u8 {
    // Layout (descending): [0][trampoline][rbp][rbx][r12][r13][r14][r15]
    // [mxcsr|fcw|pad]. The restore pops six registers then `ret`s into
    // `trampoline` with rsp ≡ 8 (mod 16), exactly the post-`call` ABI
    // state. 0x1F80 / 0x037F are the architectural reset control words.
    //
    // The zero word *above* the trampoline's return-address slot is
    // load-bearing: it sits at CFA−8 of the trampoline frame, where the
    // unwinder (panic backtraces walk every frame) expects the caller's
    // PC. A fresh stack straight from the kernel is zeroed, but a
    // recycled allocation holds whatever the previous owner left there —
    // the walker would treat that garbage as a code address and fault
    // inside libgcc. PC 0 has no FDE, so the walk ends here instead.
    unsafe {
        let top = stack_top as *mut u64;
        top.offset(-1).write(0);
        top.offset(-2)
            .write(trampoline as *const () as usize as u64);
        for i in 3..=8 {
            top.offset(-i).write(0);
        }
        top.offset(-9).write(0x037F_0000_1F80u64); // fcw << 32 | mxcsr
        top.offset(-9) as *mut u8
    }
}

#[cfg(target_arch = "aarch64")]
fn bootstrap(stack_top: *mut u8) -> *mut u8 {
    // 160-byte frame of zeroed callee-saved registers with the x30 (link
    // register) slot pointing at `trampoline`; the restore's `ret`
    // branches there with a 16-aligned sp. The zeroed x29 slot doubles
    // as the unwind terminator: AArch64 frame records chain through
    // x29, and a null frame pointer ends a backtrace walk even on a
    // recycled (non-zero) stack allocation.
    unsafe {
        let sp = (stack_top as *mut u64).offset(-20);
        for i in 0..20 {
            sp.add(i).write(0);
        }
        sp.add(11).write(trampoline as *const () as usize as u64); // x30 slot
        sp as *mut u8
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn bootstrap(_stack_top: *mut u8) -> *mut u8 {
    panic!(
        "ExecMode::Event needs a stack switch for this architecture \
         (x86_64 and aarch64 are supported); use --exec thread"
    );
}

/// One resumable task with its own stack. `'a` bounds the borrows the
/// entry closure captures: the driver that owns the `Coro` must not
/// outlive them, exactly like a scoped thread.
pub struct Coro<'a> {
    inner: Box<Inner>,
    _entry_borrows: std::marker::PhantomData<&'a ()>,
}

impl<'a> Coro<'a> {
    /// Create a suspended task that will run `entry` on its own
    /// `stack_bytes`-sized stack when first resumed.
    pub fn new<F: FnOnce() + 'a>(stack_bytes: usize, entry: F) -> Self {
        let stack = StackMem::new(stack_bytes);
        let task_sp = bootstrap(stack.top());
        // Erase the borrow lifetime for storage; PhantomData<&'a ()> on
        // the Coro keeps the real constraint visible to the borrow
        // checker.
        let entry: Box<dyn FnOnce() + 'a> = Box::new(entry);
        let entry: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(entry) };
        Coro {
            inner: Box::new(Inner {
                _stack: stack,
                state: State::New,
                task_sp,
                resumer_sp: std::ptr::null_mut(),
                entry: Some(entry),
                panic: None,
            }),
            _entry_borrows: std::marker::PhantomData,
        }
    }

    /// Switch onto the task's stack until it yields or finishes. Returns
    /// `true` once the task is finished.
    ///
    /// # Panics
    /// Panics if the task already finished.
    pub fn resume(&mut self) -> bool {
        let inner: &mut Inner = &mut self.inner;
        assert!(
            matches!(inner.state, State::New | State::Suspended),
            "resumed a {:?} coroutine",
            inner.state
        );
        inner.state = State::Running;
        let me = inner as *mut Inner;
        let prev = CURRENT.with(|c| c.replace(me));
        // SAFETY: task_sp is either the bootstrap frame or the frame a
        // yield_current saved; both resume correctly and switch back
        // exactly once before this Inner can be touched again.
        unsafe { o2k_coro_switch(&mut inner.resumer_sp, inner.task_sp) };
        CURRENT.with(|c| c.set(prev));
        inner.state == State::Finished
    }

    /// Whether the entry closure has run to completion (or unwound).
    pub fn finished(&self) -> bool {
        self.inner.state == State::Finished
    }

    /// Whether the entry closure has started running at all.
    pub fn started(&self) -> bool {
        self.inner.state != State::New
    }

    /// The panic payload of a finished task that unwound, if any.
    pub fn take_panic(&mut self) -> Option<Box<dyn Any + Send + 'static>> {
        self.inner.panic.take()
    }
}

impl Drop for Coro<'_> {
    fn drop(&mut self) {
        // A suspended task still has live frames on its stack; their
        // destructors cannot run without resuming it, which the owner can
        // no longer do. The event driver prevents this by poisoning and
        // resuming every started task before dropping it; tasks that
        // never started just drop their entry closure. Anything else is a
        // driver bug — leak the frames (safe: nothing will touch them)
        // but say so loudly in debug builds.
        debug_assert!(
            !matches!(self.inner.state, State::Suspended | State::Running),
            "coroutine dropped while suspended: its stack frames leak"
        );
    }
}

/// Suspend the currently-running task, switching back to its resumer.
/// Returns when the task is next resumed.
///
/// # Panics
/// Panics when called outside any task.
pub fn yield_current() {
    let me = CURRENT.with(|c| c.get());
    assert!(
        !me.is_null(),
        "coro::yield_current outside a running coroutine"
    );
    // SAFETY: CURRENT points at the Inner of the task executing this very
    // function; the resumer's sp was saved on its way in.
    let inner = unsafe { &mut *me };
    inner.state = State::Suspended;
    unsafe { o2k_coro_switch(&mut inner.task_sp, inner.resumer_sp) };
}

/// Whether the caller is executing inside a coroutine.
pub fn in_coroutine() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn runs_to_completion_without_yield() {
        let hit = Rc::new(Cell::new(false));
        let h = Rc::clone(&hit);
        let mut c = Coro::new(64 * 1024, move || h.set(true));
        assert!(!c.started());
        assert!(c.resume());
        assert!(hit.get());
        assert!(c.finished());
    }

    #[test]
    fn yields_interleave_with_driver() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = Rc::clone(&log);
        let mut c = Coro::new(64 * 1024, move || {
            l.borrow_mut().push("a");
            yield_current();
            l.borrow_mut().push("b");
            yield_current();
            l.borrow_mut().push("c");
        });
        assert!(!c.resume());
        log.borrow_mut().push("drv1");
        assert!(!c.resume());
        log.borrow_mut().push("drv2");
        assert!(c.resume());
        assert_eq!(*log.borrow(), ["a", "drv1", "b", "drv2", "c"]);
    }

    #[test]
    fn two_coroutines_alternate() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mk = |tag: &'static str| {
            let l = Rc::clone(&log);
            Coro::new(64 * 1024, move || {
                for i in 0..3 {
                    l.borrow_mut().push((tag, i));
                    yield_current();
                }
            })
        };
        let mut a = mk("a");
        let mut b = mk("b");
        for _ in 0..4 {
            if !a.finished() {
                a.resume();
            }
            if !b.finished() {
                b.resume();
            }
        }
        assert_eq!(
            *log.borrow(),
            [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]
        );
    }

    #[test]
    fn panic_is_parked_not_propagated() {
        let mut c = Coro::new(64 * 1024, || panic!("boom in task"));
        assert!(c.resume(), "a panicking task finishes");
        let p = c.take_panic().expect("payload parked");
        assert_eq!(p.downcast_ref::<&str>(), Some(&"boom in task"));
    }

    #[test]
    fn deep_recursion_on_own_stack() {
        fn rec(n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                // Keep a real frame per level.
                std::hint::black_box(rec(n - 1) + 1)
            }
        }
        let mut c = Coro::new(STACK_BYTES, || {
            assert_eq!(rec(10_000), 10_000);
        });
        assert!(c.resume());
    }

    #[test]
    fn float_state_survives_switches() {
        let mut c = Coro::new(64 * 1024, || {
            let mut x = 1.0f64;
            for _ in 0..4 {
                x = x * 1.5 + 0.25;
                yield_current();
            }
            assert!(
                (x - 1.0f64
                    .mul_add(1.5, 0.25)
                    .mul_add(1.5, 0.25)
                    .mul_add(1.5, 0.25)
                    .mul_add(1.5, 0.25))
                .abs()
                    < 1e-12
            );
        });
        let mut f = 2.0f64;
        while !c.resume() {
            f = f.sqrt() + 1.0; // dirty the driver's float registers too
        }
        assert!(f > 1.0);
    }

    #[test]
    fn unstarted_drop_runs_entry_destructors() {
        struct Flag(Rc<Cell<bool>>);
        impl Drop for Flag {
            fn drop(&mut self) {
                self.0.set(true);
            }
        }
        let dropped = Rc::new(Cell::new(false));
        let flag = Flag(Rc::clone(&dropped));
        let c = Coro::new(64 * 1024, move || {
            let _keep = &flag;
        });
        drop(c);
        assert!(dropped.get(), "captured state dropped with the closure");
    }

    #[test]
    fn in_coroutine_reports_context() {
        assert!(!in_coroutine());
        let mut c = Coro::new(64 * 1024, || assert!(in_coroutine()));
        c.resume();
        assert!(!in_coroutine());
    }

    /// A panic inside a task whose stack is a *recycled* allocation must
    /// not crash the process. The panic handler's backtrace walker steps
    /// through every frame and reads the trampoline's "caller PC" from
    /// the top stack slot; `bootstrap` zeroes that slot precisely so the
    /// walk terminates there instead of chasing whatever bytes the
    /// previous owner left behind (f64 payloads make convincing-looking
    /// garbage pointers). Recycling is the allocator's call, so this
    /// test salts same-layout allocations with adversarial bit patterns
    /// first — if the allocator hands the task one of them back, the
    /// zero slot is all that stands between a caught panic and SIGSEGV.
    #[test]
    fn panics_are_caught_on_a_dirty_recycled_stack() {
        let bytes = 256 * 1024;
        let layout = std::alloc::Layout::from_size_align(bytes, 16).unwrap();
        for _ in 0..8 {
            // SAFETY: valid non-zero layout; filled then freed before any
            // other use.
            unsafe {
                let p = std::alloc::alloc(layout);
                assert!(!p.is_null());
                let words = p as *mut u64;
                for i in 0..bytes / 8 {
                    words.add(i).write(0x3FE4_FFFF_FFFF_FFFF);
                }
                std::alloc::dealloc(p, layout);
            }
        }
        let mut c = Coro::new(bytes, || panic!("task panic on a dirty stack"));
        assert!(c.resume(), "a panicking task still finishes");
        let payload = c.take_panic().expect("the panic is parked, not lost");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task panic on a dirty stack");
    }
}

//! Render the shock-tracking mesh sequence as SVG snapshots (written to
//! `results/mesh_step_<k>.svg`), for the rectangle and the annulus domain.
//!
//! ```text
//! cargo run --release --example mesh_gallery
//! ```

use std::fs;

use origin2k::mesh::adaptive::AdaptiveMesh;
use origin2k::mesh::export::to_svg;
use origin2k::mesh::indicator::{adapt_step, Shock};
use origin2k::mesh::quality::mesh_quality;

fn main() {
    fs::create_dir_all("results").expect("results dir");

    // Planar shock across the unit square.
    let mut square = AdaptiveMesh::structured(24, 24, 1.0, 1.0);
    let planar = Shock::Planar {
        x0: 0.0,
        speed: 1.0,
    };
    for step in 0..5 {
        let t = (step as f64 + 1.0) / 5.0;
        adapt_step(&mut square, &planar, t, 0.08, 0.22, 2);
        square.validate().expect("conforming");
        let path = format!("results/mesh_step_{step}.svg");
        fs::write(&path, to_svg(&square, 600.0)).expect("write svg");
        let q = mesh_quality(&square);
        println!(
            "step {step}: front at x={t:.2}, {} active tris, min angle {:.1}°, wrote {path}",
            square.num_active(),
            q.min_angle_deg
        );
    }

    // Expanding circular shock through an annulus.
    let mut ring = AdaptiveMesh::annulus(6, 48, 0.35, 1.2);
    let circular = Shock::Circular {
        cx: 0.0,
        cy: 0.0,
        r0: 0.35,
        speed: 0.17,
    };
    for step in 0..5 {
        adapt_step(&mut ring, &circular, step as f64, 0.05, 0.16, 2);
        ring.validate().expect("conforming");
        let path = format!("results/annulus_step_{step}.svg");
        fs::write(&path, to_svg(&ring, 600.0)).expect("write svg");
        println!(
            "annulus step {step}: {} active tris, wrote {path}",
            ring.num_active()
        );
    }
    println!("\nOpen the SVGs to watch refinement track the fronts.");
}

//! A guided tour of the three programming-model APIs on the simulated
//! Origin2000 — the "hello world" of each paradigm, with the virtual-time
//! price of every operation printed.
//!
//! ```text
//! cargo run --release --example models_tour
//! ```

use std::sync::Arc;

use origin2k::machine::{Machine, MachineConfig};
use origin2k::mp::{MpWorld, RecvSpec};
use origin2k::parallel::Team;
use origin2k::sas::SasWorld;
use origin2k::shmem::SymWorld;

fn main() {
    let machine = Arc::new(Machine::new(4, MachineConfig::origin2000()));

    // --- Message passing: explicit two-sided communication -------------
    println!("== MP (MPI-style) ==");
    let w = MpWorld::new(Arc::clone(&machine));
    let team = Team::new(Arc::clone(&machine));
    let run = team.run(|ctx| {
        if ctx.pe() == 0 {
            w.send(ctx, 3, 7, &[1.0f64, 2.0, 3.0]);
            format!("rank 0 sent 24 B to rank 3; clock = {} ns", ctx.now())
        } else if ctx.pe() == 3 {
            let (src, _, data) = w.recv::<f64>(ctx, RecvSpec::from(0, 7));
            format!(
                "rank 3 received {:?} from {src}; clock = {} ns",
                data,
                ctx.now()
            )
        } else {
            let total = w.allreduce_sum_u64(ctx, vec![ctx.pe() as u64])[0];
            format!(
                "rank {} joined allreduce → {total}; clock = {} ns",
                ctx.pe(),
                ctx.now()
            )
        }
    });
    for line in &run.results {
        println!("  {line}");
    }

    // --- SHMEM: one-sided puts/gets on a symmetric heap ----------------
    println!("\n== SHMEM (one-sided) ==");
    let w = SymWorld::new(Arc::clone(&machine));
    let team = Team::new(Arc::clone(&machine));
    let run = team.run(|ctx| {
        let counter = w.alloc::<u64>(ctx, 1);
        let data = w.alloc::<f64>(ctx, 8);
        // Everyone takes a ticket at PE 0 with a remote fetch-add ...
        let ticket = counter.fadd(ctx, 0, 0, 1u64);
        // ... and puts a value into its right neighbour's instance.
        let next = (ctx.pe() + 1) % ctx.npes();
        data.put(ctx, next, 0, &[ctx.pe() as f64 * 10.0]);
        w.barrier_all(ctx);
        let got = data.read_local1(ctx, 0);
        format!(
            "PE {} drew ticket {ticket}, found {got} put by its left neighbour; clock = {} ns",
            ctx.pe(),
            ctx.now()
        )
    });
    for line in &run.results {
        println!("  {line}");
    }

    // --- CC-SAS: implicit communication through coherence --------------
    println!("\n== CC-SAS (shared address space) ==");
    let w = SasWorld::new(Arc::clone(&machine));
    let team = Team::new(machine);
    let run = team.run(|ctx| {
        let shared = w.alloc::<f64>(ctx, 1024);
        let mut pe = w.pe();
        let n = 1024 / ctx.npes();
        let lo = ctx.pe() * n;
        for i in lo..lo + n {
            pe.write(ctx, &shared, i, (i * i) as f64); // first touch homes the page
        }
        w.barrier(ctx);
        // Reading another PE's block: the coherence protocol fetches the
        // lines — no explicit communication in the program text.
        let other = ((ctx.pe() + 1) % ctx.npes()) * n;
        let sum: f64 = (other..other + n).map(|i| pe.read(ctx, &shared, i)).sum();
        let (hits, misses) = pe.cache_stats();
        format!(
            "PE {} summed a remote block → {sum:.0}; cache {hits} hits / {misses} misses; clock = {} ns",
            ctx.pe(),
            ctx.now()
        )
    });
    for line in &run.results {
        println!("  {line}");
    }
    println!("\n(Same machine, same costs — only the programming model changed.)");
}

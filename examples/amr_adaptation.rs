//! Watch the AMR workload evolve: a shock sweeps the domain while the mesh
//! refines ahead of it and coarsens behind, then compare the three models
//! on the same run.
//!
//! ```text
//! cargo run --release --example amr_adaptation
//! ```

use origin2k::mesh::adaptive::AdaptiveMesh;
use origin2k::mesh::indicator::adapt_step;
use origin2k::mesh::quality::mesh_quality;
use origin2k::partition::WeightedPoint;
use origin2k::prelude::*;

fn main() {
    let cfg = AmrConfig {
        nx: 32,
        ny: 32,
        steps: 6,
        sweeps: 4,
        ..AmrConfig::default()
    };

    // Sequential replay of the adaptation the parallel runs perform.
    println!(
        "mesh evolution (shock crossing the unit square in {} steps):\n",
        cfg.steps
    );
    println!(
        "{:<5} {:>8} {:>9} {:>10} {:>11} {:>10}",
        "step", "front x", "active", "max level", "min angle°", "imbalance"
    );
    let mut mesh = AdaptiveMesh::structured(cfg.nx, cfg.ny, 1.0, 1.0);
    for step in 0..cfg.steps {
        let t = cfg.front_time(step);
        adapt_step(
            &mut mesh,
            &cfg.shock(),
            t,
            cfg.refine_band,
            cfg.coarsen_band,
            cfg.max_level,
        );
        mesh.validate().expect("mesh stays conforming");
        let q = mesh_quality(&mesh);
        let max_level = mesh
            .active_tris()
            .iter()
            .map(|&tr| mesh.level_of(tr))
            .max()
            .unwrap_or(0);
        // Imbalance a static 8-way block partition would suffer.
        let dual = origin2k::mesh::dual::dual_graph(&mesh);
        let pts: Vec<WeightedPoint> = dual
            .centroids
            .iter()
            .map(|c| WeightedPoint::new(c.x, c.y, 1.0))
            .collect();
        let parts = origin2k::partition::rcb_partition(&pts, 8);
        let imb = origin2k::partition::imbalance(&vec![1.0; parts.len()], &parts, 8);
        println!(
            "{:<5} {:>8.2} {:>9} {:>10} {:>11.1} {:>10.3}",
            step,
            t,
            mesh.num_active(),
            max_level,
            q.min_angle_deg,
            imb
        );
    }

    // The parallel comparison on the same workload.
    println!("\nfour-model comparison at P = 16 (incl. the hybrid extension):");
    let nb = NBodyConfig::small();
    for model in Model::WITH_HYBRID {
        let r = run_app(Machine::origin2000(16), App::Amr, model, &nb, &cfg);
        let (b, _, rm, s) = r.breakdown().fractions();
        println!(
            "  {:<8} {:>10.2} ms   busy {:>4.1}%  remote {:>4.1}%  sync {:>4.1}%  checksum {:.6}",
            model.name(),
            r.sim_time as f64 / 1e6,
            b * 100.0,
            rm * 100.0,
            s * 100.0,
            r.checksum
        );
    }
    println!("\n(All three checksums must agree bitwise: same mesh, same Jacobi, same schedule.)");
}

//! Quickstart: run both adaptive applications under all three programming
//! models on a 8-PE simulated Origin2000 and print the comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use origin2k::prelude::*;

fn main() {
    let nbody_cfg = NBodyConfig {
        n: 1024,
        steps: 2,
        ..NBodyConfig::default()
    };
    let amr_cfg = AmrConfig {
        nx: 20,
        ny: 20,
        steps: 3,
        sweeps: 3,
        ..AmrConfig::default()
    };
    let pes = 8;

    println!("origin2k quickstart — {pes} simulated PEs (Origin2000 preset)\n");
    println!(
        "{:<8} {:<8} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "app", "model", "sim time ms", "busy%", "local%", "remote%", "sync%"
    );
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let machine = Machine::origin2000(pes);
            let r = run_app(machine, app, model, &nbody_cfg, &amr_cfg);
            let (b, l, rm, s) = r.breakdown().fractions();
            println!(
                "{:<8} {:<8} {:>12.2} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                app.name(),
                model.name(),
                r.sim_time as f64 / 1e6,
                b * 100.0,
                l * 100.0,
                rm * 100.0,
                s * 100.0
            );
        }
        println!();
    }

    println!("programming effort (effective source lines):");
    for row in effort_table() {
        println!(
            "  {:<8} {:<8} {:>5}",
            row.app.name(),
            row.model.name(),
            row.loc
        );
    }
    println!("\nRun `cargo run --release -p o2k-bench --bin repro -- all` for the full suite.");
}

//! N-body model showdown: sweep processor counts, print speedup curves and
//! the communication structure each model produced.
//!
//! ```text
//! cargo run --release --example nbody_showdown [n] [steps]
//! ```

use origin2k::core::figure::line_chart;
use origin2k::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2048);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let cfg = NBodyConfig {
        n,
        steps,
        ..NBodyConfig::default()
    };
    let amr = AmrConfig::small(); // unused by the N-body path
    let pes = [1usize, 2, 4, 8, 16, 32];

    println!("Barnes-Hut N-body, N={n}, θ={}, {steps} steps\n", cfg.theta);
    let sweep = sweep_models(App::NBody, &Model::ALL, &pes, &cfg, &amr);

    println!(
        "{:<4} {:>12} {:>12} {:>12}   {:>7} {:>7} {:>7}",
        "P", "MPI ms", "SHMEM ms", "SAS ms", "MPI×", "SHM×", "SAS×"
    );
    for (pi, &p) in sweep.pes.iter().enumerate() {
        let t: Vec<f64> = sweep
            .series
            .iter()
            .map(|s| s.runs[pi].sim_time as f64 / 1e6)
            .collect();
        let sp: Vec<f64> = sweep.series.iter().map(|s| s.speedups()[pi]).collect();
        println!(
            "{:<4} {:>12.2} {:>12.2} {:>12.2}   {:>7.2} {:>7.2} {:>7.2}",
            p, t[0], t[1], t[2], sp[0], sp[1], sp[2]
        );
    }

    let series: Vec<(&str, Vec<f64>)> = sweep
        .series
        .iter()
        .map(|s| (s.model.name(), s.speedups()))
        .collect();
    println!(
        "\n{}",
        line_chart("N-body speedup", &sweep.pes, &series, 12)
    );

    // Communication structure at the largest P.
    let last = sweep.pes.len() - 1;
    println!("communication at P={}:", sweep.pes[last]);
    for s in &sweep.series {
        let c = &s.runs[last].counters;
        println!(
            "  {:<8} msgs={:<8} msg KB={:<8} puts={:<8} gets={:<6} amos={:<6} remote misses={}",
            s.model.name(),
            c.msgs_sent,
            c.msg_bytes / 1024,
            c.puts,
            c.gets,
            c.amos,
            c.misses_remote
        );
    }
    // Physics agreement.
    let checks: Vec<f64> = sweep.series.iter().map(|s| s.runs[last].checksum).collect();
    let spread = (checks.iter().cloned().fold(f64::MIN, f64::max)
        - checks.iter().cloned().fold(f64::MAX, f64::min))
        / checks[0];
    println!("\nchecksum agreement across models: relative spread {spread:.2e}");
}

//! The cluster-of-SMPs story: run AMR under all four models on the stock
//! Origin2000 and on a simulated cluster of SMP nodes, and watch the
//! ranking rearrange — the experiment that motivated the paper's follow-up
//! work on hybrid programming.
//!
//! ```text
//! cargo run --release --example hybrid_cluster
//! ```

use std::sync::Arc;

use origin2k::machine::{Machine, MachineConfig};
use origin2k::prelude::*;

fn main() {
    let amr = AmrConfig {
        nx: 24,
        ny: 24,
        steps: 4,
        sweeps: 4,
        ..AmrConfig::default()
    };
    let nb = NBodyConfig::small();
    let p = 16;

    for (label, cfg) in [
        (
            "SGI Origin2000 (hardware ccNUMA)",
            MachineConfig::origin2000(),
        ),
        (
            "cluster of SMPs (commodity network)",
            MachineConfig::cluster_of_smps(),
        ),
    ] {
        println!("=== {label}, P = {p} ===");
        println!(
            "{:<10} {:>12} {:>9} {:>9} {:>11} {:>9}",
            "model", "sim time ms", "busy%", "remote%", "msgs sent", "rem misses"
        );
        let machine = Arc::new(Machine::new(p, cfg));
        let mut times = Vec::new();
        for model in Model::WITH_HYBRID {
            let r = run_app(Arc::clone(&machine), App::Amr, model, &nb, &amr);
            let (b, _, rm, _) = r.breakdown().fractions();
            println!(
                "{:<10} {:>12.2} {:>8.1}% {:>8.1}% {:>11} {:>9}",
                model.name(),
                r.sim_time as f64 / 1e6,
                b * 100.0,
                rm * 100.0,
                r.counters.msgs_sent,
                r.counters.misses_remote
            );
            times.push((model.name(), r.sim_time));
        }
        let winner = times.iter().min_by_key(|(_, t)| *t).expect("ran models");
        println!("--> fastest: {}\n", winner.0);
    }
    println!("On hardware ccNUMA the shared address space wins; take the coherent");
    println!("network away and the hybrid's batched node-to-node messages pay off.");
}

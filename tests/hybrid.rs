//! Integration tests for the hybrid MPI+SAS extension: correctness against
//! the pure models, discipline (zero cross-node coherence), and the
//! machine-dependent performance story (experiment A5 in miniature).

use std::sync::Arc;

use origin2k::machine::{Machine, MachineConfig};
use origin2k::prelude::*;

fn machine(pes: usize, cfg: MachineConfig) -> Arc<Machine> {
    Arc::new(Machine::new(pes, cfg))
}

#[test]
fn hybrid_amr_matches_every_pure_model_bitwise() {
    let am = AmrConfig::small();
    let nb = NBodyConfig::small();
    let reference = run_app(
        machine(1, MachineConfig::origin2000()),
        App::Amr,
        Model::Sas,
        &nb,
        &am,
    )
    .checksum;
    for p in [2, 4, 8] {
        let c = run_app(
            machine(p, MachineConfig::origin2000()),
            App::Amr,
            Model::Hybrid,
            &nb,
            &am,
        )
        .checksum;
        assert_eq!(c, reference, "hybrid AMR diverged at P={p}");
    }
}

#[test]
fn hybrid_nbody_physics_within_tolerance() {
    let am = AmrConfig::small();
    let nb = NBodyConfig::small();
    let reference = run_app(
        machine(1, MachineConfig::origin2000()),
        App::NBody,
        Model::Sas,
        &nb,
        &am,
    )
    .checksum;
    for p in [2, 4, 8] {
        let c = run_app(
            machine(p, MachineConfig::origin2000()),
            App::NBody,
            Model::Hybrid,
            &nb,
            &am,
        )
        .checksum;
        let rel = (c - reference).abs() / reference;
        assert!(rel < 0.02, "hybrid N-body off by {rel} at P={p}");
    }
}

#[test]
fn hybrid_discipline_no_cross_node_coherence() {
    // The hybrid's defining property: page-aligned per-node segments and
    // leader messages mean the coherence protocol never crosses a node.
    let am = AmrConfig::small();
    let nb = NBodyConfig::small();
    for app in [App::NBody, App::Amr] {
        for cfg in [
            MachineConfig::origin2000(),
            MachineConfig::cluster_of_smps(),
        ] {
            let r = run_app(machine(8, cfg), app, Model::Hybrid, &nb, &am);
            assert_eq!(
                r.counters.misses_remote, 0,
                "{app:?}: hybrid must have zero remote misses"
            );
            assert!(r.counters.msgs_sent > 0, "{app:?}: leaders must message");
            assert!(
                r.counters.cache_hits > 0,
                "{app:?}: node-local sharing used"
            );
        }
    }
}

#[test]
fn hybrid_beats_pure_fine_grained_models_on_the_cluster() {
    // The A5 headline at test scale: when cross-node coherence is
    // software-DSM priced, the hybrid stays fast while pure SHMEM/SAS pay
    // per-line prices for every boundary access.
    let am = AmrConfig {
        nx: 16,
        ny: 16,
        steps: 3,
        sweeps: 3,
        ..AmrConfig::default()
    };
    let nb = NBodyConfig::small();
    let cfg = MachineConfig::cluster_of_smps();
    let hy = run_app(machine(16, cfg.clone()), App::Amr, Model::Hybrid, &nb, &am).sim_time;
    let sas = run_app(machine(16, cfg.clone()), App::Amr, Model::Sas, &nb, &am).sim_time;
    let sh = run_app(machine(16, cfg), App::Amr, Model::Shmem, &nb, &am).sim_time;
    assert!(
        hy < sas,
        "hybrid ({hy}) must beat pure SAS ({sas}) on the cluster"
    );
    assert!(
        hy < sh,
        "hybrid ({hy}) must beat pure SHMEM ({sh}) on the cluster"
    );
}

#[test]
fn hybrid_uses_far_fewer_messages_than_mp() {
    let am = AmrConfig::small();
    let nb = NBodyConfig::small();
    for app in [App::NBody, App::Amr] {
        let hy = run_app(
            machine(8, MachineConfig::origin2000()),
            app,
            Model::Hybrid,
            &nb,
            &am,
        );
        let mp = run_app(
            machine(8, MachineConfig::origin2000()),
            app,
            Model::Mp,
            &nb,
            &am,
        );
        assert!(
            hy.counters.msgs_sent * 2 < mp.counters.msgs_sent,
            "{app:?}: node-granularity messaging should halve message count at least ({} vs {})",
            hy.counters.msgs_sent,
            mp.counters.msgs_sent
        );
    }
}

#[test]
fn hybrid_stays_competitive_on_the_origin2000() {
    // The hybrid pays a leader-serialisation tax (non-leader PEs wait at
    // node barriers while leaders exchange messages — visible as extra
    // Sync time), but on hardware ccNUMA it must still land in CC-SAS's
    // neighbourhood, well ahead of pure MPI.
    let am = AmrConfig {
        nx: 16,
        ny: 16,
        steps: 2,
        sweeps: 6,
        ..AmrConfig::default()
    };
    let nb = NBodyConfig::small();
    let m = machine(16, MachineConfig::origin2000());
    let hy = run_app(Arc::clone(&m), App::Amr, Model::Hybrid, &nb, &am);
    let sas = run_app(Arc::clone(&m), App::Amr, Model::Sas, &nb, &am);
    let mp = run_app(m, App::Amr, Model::Mp, &nb, &am);
    assert!(
        hy.sim_time < mp.sim_time,
        "hybrid ({}) must beat pure MPI ({}) on ccNUMA",
        hy.sim_time,
        mp.sim_time
    );
    // At this deliberately tiny workload the leader tax is at its worst;
    // A5 shows the gap closing to ~2% at realistic sizes.
    assert!(
        (hy.sim_time as f64) < 2.0 * sas.sim_time as f64,
        "hybrid ({}) should stay within 2x of SAS ({}) even at toy sizes",
        hy.sim_time,
        sas.sim_time
    );
}

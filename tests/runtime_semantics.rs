//! Integration tests of the model runtimes working together: multiple
//! worlds in one team, virtual-time coherence between layers, and the
//! experiment framework end to end.

use std::sync::Arc;

use origin2k::machine::{Machine, MachineConfig, TimeCat};
use origin2k::mp::{MpWorld, RecvSpec};
use origin2k::parallel::{SimLock, Team};
use origin2k::sas::SasWorld;
use origin2k::shmem::SymWorld;

fn machine(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::origin2000()))
}

#[test]
fn all_three_worlds_coexist_in_one_team() {
    // A hybrid program: messages, puts and shared memory in the same run —
    // everything charges the same clocks.
    let m = machine(4);
    let mp = MpWorld::new(Arc::clone(&m));
    let sh = SymWorld::new(Arc::clone(&m));
    let sas = SasWorld::new(Arc::clone(&m));
    let run = Team::new(m).run(|ctx| {
        // MP phase: ring ping.
        let next = (ctx.pe() + 1) % ctx.npes();
        let prev = (ctx.pe() + ctx.npes() - 1) % ctx.npes();
        mp.send(ctx, next, 0, &[ctx.pe() as u64]);
        let (_, _, got) = mp.recv::<u64>(ctx, RecvSpec::from(prev, 0));
        // SHMEM phase: publish what we got.
        let sym = sh.alloc::<u64>(ctx, 1);
        sym.put1(ctx, 0, 0, got[0]); // last writer wins; just traffic
        sh.barrier_all(ctx);
        // SAS phase: accumulate into shared memory.
        let acc = sas.alloc::<u64>(ctx, 1);
        let mut pe = sas.pe();
        pe.fadd(ctx, &acc, 0, got[0]);
        sas.barrier(ctx);
        pe.read(ctx, &acc, 0)
    });
    let expect: u64 = (0..4).sum();
    for r in &run.results {
        assert_eq!(*r, expect);
    }
    let c = run.merged_counters();
    assert!(c.msgs_sent >= 4, "MP traffic recorded");
    assert!(c.puts >= 4, "SHMEM traffic recorded");
    assert!(
        c.cache_hits + c.misses_local + c.misses_remote > 0,
        "SAS coherence activity recorded"
    );
}

#[test]
fn lock_serialises_across_models_too() {
    let m = machine(4);
    let sas = SasWorld::new(Arc::clone(&m));
    let lock = SimLock::new(0);
    let run = Team::new(m).run(|ctx| {
        let shared = sas.alloc::<u64>(ctx, 1);
        let mut pe = sas.pe();
        let g = lock.acquire(ctx);
        let v = pe.read(ctx, &shared, 0);
        ctx.compute(500);
        pe.write(ctx, &shared, 0, v + 1);
        g.release(ctx);
        sas.barrier(ctx);
        pe.read(ctx, &shared, 0)
    });
    for r in run.results {
        assert_eq!(r, 4, "lost update under the lock");
    }
}

#[test]
fn virtual_time_is_monotone_through_mixed_operations() {
    let m = machine(2);
    let mp = MpWorld::new(Arc::clone(&m));
    let run = Team::new(m).run(|ctx| {
        let mut stamps = vec![ctx.now()];
        ctx.compute(100);
        stamps.push(ctx.now());
        ctx.barrier();
        stamps.push(ctx.now());
        if ctx.pe() == 0 {
            mp.send(ctx, 1, 0, &[1u8]);
        } else {
            let _ = mp.recv::<u8>(ctx, RecvSpec::from(0, 0));
        }
        stamps.push(ctx.now());
        ctx.advance(5, TimeCat::Local);
        stamps.push(ctx.now());
        stamps
    });
    for stamps in run.results {
        assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "clock ran backwards: {stamps:?}"
        );
    }
}

#[test]
fn experiment_suite_runs_quick() {
    // Smoke the full reproduction path end to end (quick sizes).
    for id in ["t1", "t2", "f6", "a3"] {
        let out = o2k_bench::run_experiment(id, true);
        assert!(out.len() > 80, "{id} produced no content");
    }
}

#[test]
fn effort_table_is_stable_shape() {
    let t = origin2k::core::effort_table();
    assert_eq!(t.len(), 6);
    // AMR SAS must be the shortest AMR implementation (paper's key claim).
    let amr: Vec<_> = t
        .iter()
        .filter(|r| r.app == origin2k::apps::App::Amr)
        .collect();
    let sas = amr
        .iter()
        .find(|r| r.model == origin2k::apps::Model::Sas)
        .unwrap();
    assert!(amr.iter().all(|r| r.loc >= sas.loc));
}

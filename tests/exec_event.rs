//! Execution-backend equivalence: the event core must be observationally
//! identical to the thread backend under the deterministic scheduler.
//!
//! Three layers of evidence:
//!
//! * **Golden equivalence** — the runs behind every pinned golden
//!   (F1/F3/F5 app runs, the serving results, and the f2/n1/n2/q1
//!   experiment archives) are regenerated on both backends and
//!   byte-diffed. The T2/T3 goldens never execute a team, so they are
//!   backend-independent by construction.
//! * **Property tests** — virtual-time monotonicity of the event heap's
//!   pick sequence, deterministic tie-breaking (same seed ⇒ same
//!   fingerprint on both backends), and no lost wakeups through
//!   mailbox+barrier traffic at P ∈ {2, 4, 8, 64}.
//! * **Scale smoke** — P = 1024 teams (past the OS-thread cap) complete
//!   on the event core for N-body, AMR, and serving, with cross-model
//!   checksums agreeing and request conservation holding; thread mode at
//!   P = 1024 is refused with a diagnostic pointing at `--exec event`.
//!
//! Tests that flip the *process-default* exec mode serialize on
//! [`EXEC_DEFAULT`]; everything else passes explicit [`RunOpts`] and is
//! safe to run concurrently.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use origin2k::prelude::*;

/// Guards `set_default_exec`: the default is process-global, and tests in
/// this binary run concurrently.
static EXEC_DEFAULT: Mutex<()> = Mutex::new(());

fn machine(p: usize) -> Arc<Machine> {
    Machine::origin2000(p)
}

fn det(exec: ExecMode) -> RunOpts {
    RunOpts {
        sched: Some(SchedPolicy::Det),
        exec: Some(exec),
        ..RunOpts::default()
    }
}

/// Byte-level equivalence of two runs: simulated time, physics checksum
/// bits, merged counters, per-PE breakdowns, NetStats, ServeStats, and
/// the schedule fingerprint.
fn assert_same_run(tag: &str, a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.sim_time, b.sim_time, "{tag}: sim time");
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "{tag}: checksum bits"
    );
    assert_eq!(a.counters, b.counters, "{tag}: merged counters");
    assert_eq!(a.per_pe, b.per_pe, "{tag}: per-PE breakdowns");
    assert_eq!(a.net, b.net, "{tag}: NetStats");
    assert_eq!(a.serve, b.serve, "{tag}: ServeStats");
    let (fa, fb) = (a.sched.as_ref().unwrap(), b.sched.as_ref().unwrap());
    assert_eq!(fa.fingerprint, fb.fingerprint, "{tag}: pick sequence");
    assert_eq!(fa.switches, fb.switches, "{tag}: handoff count");
}

// ------------------------------------------------- golden equivalence

/// The runs behind the F1/F3/F5 pins (both apps, all models, P ∈ {1, 4},
/// quick sizes): regenerate under thread-det and event-det and compare
/// everything the goldens derive from.
#[test]
fn pinned_app_goldens_replay_bitwise_under_event() {
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            for p in [1usize, 4] {
                let t = run_app_opts(machine(p), app, model, &nb, &am, det(ExecMode::Thread));
                let e = run_app_opts(machine(p), app, model, &nb, &am, det(ExecMode::Event));
                let tag = format!("{}/{} P={p}", app.name(), model.name());
                assert_same_run(&tag, &t, &e);
            }
        }
    }
}

/// The serving goldens: `ServeConfig::small()` at P=8 on the queued
/// fabric, every model — quantiles and NetStats must match bitwise.
#[test]
fn serve_goldens_replay_bitwise_under_event() {
    use origin2k::machine::ContentionMode;
    let cfg = ServeConfig::small();
    let queued = |p: usize| {
        Arc::new(Machine::new(
            p,
            MachineConfig {
                contention: ContentionMode::Queued,
                ..MachineConfig::origin2000()
            },
        ))
    };
    for model in Model::ALL {
        let t = origin2k::serve::run_opts(queued(8), model, &cfg, det(ExecMode::Thread));
        let e = origin2k::serve::run_opts(queued(8), model, &cfg, det(ExecMode::Event));
        let tag = format!("serve/{}", model.name());
        assert_same_run(&tag, &t, &e);
        assert!(t.serve.is_some(), "{tag}: serving runs carry ServeStats");
    }
}

/// The pinned experiment archives: f2, n1, n2, and q1 regenerated under
/// the event core must be byte-identical to the thread-backend text
/// (tables, hotspot reports, quantiles — the whole rendered archive).
#[test]
fn experiment_archives_replay_bitwise_under_event() {
    let _guard = EXEC_DEFAULT.lock().unwrap();
    origin2k::sched::set_default_policy(SchedPolicy::Det);
    for id in ["f2", "n1", "n2", "q1"] {
        origin2k::sched::set_default_exec(ExecMode::Thread);
        let thread = o2k_bench::run_experiment(id, true);
        origin2k::sched::set_default_exec(ExecMode::Event);
        let event = o2k_bench::run_experiment(id, true);
        origin2k::sched::set_default_exec(ExecMode::Thread);
        assert_eq!(
            thread, event,
            "repro {id} archive must be byte-identical across backends"
        );
    }
}

// ------------------------------------------------------ property tests

mod properties {
    use super::*;
    use origin2k::sched::{coro, CoopSched};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The det event heap grants the floor in non-decreasing virtual
        /// time: after a warm-up barrier, the clock observed at each grant
        /// never regresses (ties broken by PE id never reorder time).
        #[test]
        fn popped_virtual_times_are_monotone_under_event(
            p_idx in 0usize..3,
            incs in proptest::collection::vec(1u64..1_000, 64),
        ) {
            let p = [2usize, 4, 8][p_idx];
            let rounds = incs.len() / p;
            let sched = Arc::new(CoopSched::with_exec(
                p,
                SchedPolicy::Det,
                vec![p],
                ExecMode::Event,
            ));
            let grants: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let mut coros: Vec<coro::Coro> = (0..p)
                .map(|pe| {
                    let sched = Arc::clone(&sched);
                    let grants = Arc::clone(&grants);
                    let incs = incs.clone();
                    coro::Coro::new(coro::stack_bytes(), move || {
                        sched.register(pe);
                        sched.gate_wait(0, pe, 0);
                        let mut clock = 0u64;
                        for r in 0..rounds {
                            clock += incs[r * p + pe];
                            sched.yield_now(pe, clock);
                            // The floor is ours again: one grant observed.
                            grants.lock().unwrap().push(clock);
                        }
                        sched.finish(pe, clock);
                    })
                })
                .collect();
            for c in coros.iter_mut() {
                c.resume();
            }
            while let Some(next) = sched.event_take_next() {
                coros[next].resume();
            }
            prop_assert!(coros.iter().all(|c| c.finished()), "all PEs must run dry");
            let grants = grants.lock().unwrap();
            prop_assert_eq!(grants.len(), rounds * p);
            for w in grants.windows(2) {
                prop_assert!(
                    w[0] <= w[1],
                    "virtual time regressed across grants: {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }

        /// Deterministic tie-breaking: the same Explore seed produces the
        /// same schedule fingerprint on the event core twice in a row, and
        /// the thread backend takes the identical pick sequence.
        #[test]
        fn same_seed_same_fingerprint_on_both_backends(
            p in 2usize..9,
            seed in any::<u64>(),
        ) {
            let policy = SchedPolicy::Explore { seed };
            let go = |exec: ExecMode| {
                Team::new(machine(p))
                    .seed(7)
                    .sched(policy)
                    .exec(exec)
                    .run(|ctx| {
                        for _ in 0..4 {
                            ctx.compute(50 + ctx.pe() as u64 * 11);
                            ctx.barrier();
                        }
                        ctx.rng_u64()
                    })
            };
            let e1 = go(ExecMode::Event);
            let e2 = go(ExecMode::Event);
            let t = go(ExecMode::Thread);
            let f = |r: &parallel::TeamRun<u64>| r.sched.as_ref().unwrap().fingerprint;
            prop_assert_eq!(f(&e1), f(&e2), "event replay must be stable");
            prop_assert_eq!(f(&e1), f(&t), "backends must take the same picks");
            prop_assert_eq!(e1.results, t.results);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// No lost wakeups: random mailbox ring traffic plus barriers at
        /// P ∈ {2, 4, 8, 64}. A lost wakeup deadlocks (poisons) the team;
        /// completion with matching fingerprints on both backends is the
        /// assertion.
        #[test]
        fn no_lost_wakeups_under_event(
            p_idx in 0usize..4,
            rounds in 1usize..4,
            payload in any::<u64>(),
        ) {
            let p = [2usize, 4, 8, 64][p_idx];
            let go = |exec: ExecMode| {
                let mach = Arc::new(machine::Machine::new(
                    p,
                    machine::MachineConfig::test_tiny(),
                ));
                let world = Arc::new(mp::MpWorld::new(Arc::clone(&mach)));
                Team::new(mach)
                    .seed(payload)
                    .sched(SchedPolicy::Det)
                    .exec(exec)
                    .run(move |ctx| {
                        let me = ctx.pe();
                        let n = ctx.npes();
                        let mut acc = payload;
                        for r in 0..rounds {
                            let dst = (me + 1) % n;
                            let src = (me + n - 1) % n;
                            world.send(ctx, dst, r as mp::Tag, &[acc]);
                            let (_, _, got) = world.recv::<u64>(
                                ctx,
                                mp::RecvSpec {
                                    src: Some(src),
                                    tag: Some(r as mp::Tag),
                                },
                            );
                            acc = acc.wrapping_add(got[0]).rotate_left(7);
                            ctx.compute(10 + (me as u64 * 3 + r as u64) % 17);
                            ctx.barrier();
                        }
                        acc
                    })
            };
            let t = go(ExecMode::Thread);
            let e = go(ExecMode::Event);
            prop_assert_eq!(&t.results, &e.results, "ring traffic must agree");
            prop_assert_eq!(
                t.sched.as_ref().unwrap().fingerprint,
                e.sched.as_ref().unwrap().fingerprint
            );
        }
    }
}

// ----------------------------------------------------- P = 1024 smoke

/// N-body at P = 1024 on the event core: SHMEM and MPI both complete
/// past the thread cap and agree on the physics **bitwise** at the
/// same P (the models trade identical essential trees). A CC-SAS run
/// anchors the physics at P = 64 — the smoke keeps that model small
/// because across *different* P the MAC accepts slightly different
/// cells per partition, so the cross-P check is a tolerance, not bit
/// equality (the directory's sharer set grows past one word now, so
/// 64 is a run-time budget, not a cap).
///
/// The MPI LET trade is O(P²) in messages, so this smoke is
/// release-only (it takes minutes under debug assertions); CI runs it
/// in the release-scale step alongside E1.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "P=1024 N-body smoke is release-only: run with `cargo test --release --test exec_event p1024`"
)]
fn nbody_p1024_completes_and_models_agree_under_event() {
    let nb = NBodyConfig {
        n: 1_024,
        steps: 1,
        ..NBodyConfig::default()
    };
    let am = AmrConfig::small();
    let sh = run_app_opts(
        machine(1024),
        App::NBody,
        Model::Shmem,
        &nb,
        &am,
        det(ExecMode::Event),
    );
    assert_eq!(sh.pes, 1024);
    assert!(sh.sim_time > 0, "the run must do work");
    assert!(sh.checksum.is_finite(), "bodies must be conserved");
    let mp = run_app_opts(
        machine(1024),
        App::NBody,
        Model::Mp,
        &nb,
        &am,
        det(ExecMode::Event),
    );
    assert_eq!(
        sh.checksum.to_bits(),
        mp.checksum.to_bits(),
        "SHMEM and MPI must agree bitwise on the physics at P=1024"
    );
    let sas = run_app_opts(
        machine(64),
        App::NBody,
        Model::Sas,
        &nb,
        &am,
        det(ExecMode::Event),
    );
    let rel = (sh.checksum - sas.checksum).abs() / sas.checksum.abs();
    assert!(
        rel < 1e-6,
        "P=1024 physics must anchor to the P=64 CC-SAS run (rel err {rel:e})"
    );
}

/// AMR at P = 1024 on the event core (one cell per PE on the base
/// mesh): completion plus cross-model physics agreement. The anchors
/// run at P = 64 — the AMR checksum is partition-invariant (pinned
/// across P by E1), so small anchors carry the full cross-model
/// comparison without the directory-protocol run time of a 1024-PE
/// CC-SAS team.
#[test]
fn amr_p1024_completes_and_models_agree_under_event() {
    let nb = NBodyConfig::small();
    let am = AmrConfig {
        nx: 32,
        ny: 32,
        steps: 1,
        sweeps: 1,
        ..AmrConfig::default()
    };
    let sh = run_app_opts(
        machine(1024),
        App::Amr,
        Model::Shmem,
        &nb,
        &am,
        det(ExecMode::Event),
    );
    assert_eq!(sh.pes, 1024);
    assert!(sh.sim_time > 0, "the run must do work");
    for model in [Model::Mp, Model::Sas] {
        let anchor = run_app_opts(machine(64), App::Amr, model, &nb, &am, det(ExecMode::Event));
        assert_eq!(
            sh.checksum.to_bits(),
            anchor.checksum.to_bits(),
            "SHMEM at P=1024 must agree with {model:?} at P=64 on the physics"
        );
    }
}

/// Serving at P = 1024 shards: every request issued is completed
/// (conservation), and a second run replays bitwise — the event core
/// is deterministic even with a thousand coroutines in flight. (The
/// serve checksum depends on the shard layout, so cross-model equality
/// is pinned at P ≤ 64 by the goldens; SHMEM is the model that runs
/// cheapest here — MP termination trades O(P²) DONE tokens, which the
/// release-only mitigation smoke below pays for.)
#[test]
fn serve_p1024_conserves_requests_under_event() {
    let cfg = ServeConfig {
        keys: 16_384,
        requests: 2_048,
        seed: 0x00C0_FFEE,
        ..ServeConfig::default()
    };
    let go = || origin2k::serve::run_opts(machine(1024), Model::Shmem, &cfg, det(ExecMode::Event));
    let a = go();
    let s = a.serve.as_ref().expect("serving runs carry ServeStats");
    assert_eq!(s.issued, cfg.requests, "every request issued");
    assert_eq!(s.completed + s.failed, s.issued, "conservation");
    assert!(
        s.p50_ns <= s.p99_ns && s.p99_ns <= s.max_ns,
        "quantile order"
    );
    let b = go();
    assert_same_run("serve p1024 replay", &a, &b);
}

/// Hot-shard mitigation at P = 1024 shards on the event core: under
/// key skew 3.0 the first shards take an order-of-magnitude overload,
/// and both replicated reads and MP work-stealing must cut the skewed
/// p99 below mitigation-off while serving bit-identical data. The MP
/// cells trade O(P²) DONE tokens, so this smoke is release-only; CI
/// runs it in the release-scale step.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "P=1024 mitigation smoke is release-only: run with `cargo test --release --test exec_event p1024`"
)]
fn serve_p1024_mitigation_cuts_skewed_tail_under_event() {
    use origin2k::machine::ContentionMode;
    use origin2k::serve::Mitigation;
    let p = 1024usize;
    let queued = || {
        Arc::new(Machine::new(
            p,
            MachineConfig {
                contention: ContentionMode::Queued,
                ..MachineConfig::origin2000()
            },
        ))
    };
    let cfg = |mitigation: Mitigation| ServeConfig {
        keys: 64 * p,
        requests: 32 * p as u64,
        mean_gap_ns: 15_000,
        skew: 3.0,
        val_words: 64,
        service_ns: 1_500,
        deadline_ns: None,
        poll_ns: 4_000,
        seed: 0x00C0_FFEE,
        mitigation,
        start_ns: 600_000,
    };
    let run = |model: Model, mit: Mitigation| {
        origin2k::serve::run_opts(queued(), model, &cfg(mit), det(ExecMode::Event))
    };
    let grid = [
        (Model::Mp, Mitigation::Replicate { replicas: 3 }),
        (Model::Mp, Mitigation::Steal),
        (Model::Shmem, Mitigation::Replicate { replicas: 3 }),
    ];
    for (model, mit) in grid {
        let off = run(model, Mitigation::Off);
        let on = run(model, mit);
        for r in [&off, &on] {
            let s = r.serve.as_ref().expect("serving runs carry ServeStats");
            assert_eq!(s.issued, 32 * p as u64, "{model:?}: every request issued");
            assert_eq!(s.completed, s.issued, "{model:?} {mit:?}: conservation");
        }
        assert_eq!(
            on.checksum.to_bits(),
            off.checksum.to_bits(),
            "{model:?} {mit:?}: mitigation must serve bit-identical data"
        );
        let (off_p99, on_p99) = (
            off.serve.as_ref().unwrap().p99_ns,
            on.serve.as_ref().unwrap().p99_ns,
        );
        assert!(
            on_p99 < off_p99,
            "{model:?} {mit:?}: mitigation must cut the skewed p99 \
             ({on_p99} vs off {off_p99} ns)"
        );
        match mit {
            Mitigation::Replicate { .. } => assert!(
                on.counters.replica_bytes > 0,
                "{model:?}: replicate must ship copies"
            ),
            Mitigation::Steal => assert!(
                on.counters.requests_stolen > 0,
                "{model:?}: steal must claim batches"
            ),
            Mitigation::Off => unreachable!(),
        }
    }
}

/// The thread backend refuses a 1024-PE team with a diagnostic that
/// points at the event core instead of spawning a thousand OS threads.
#[test]
fn thread_backend_refuses_p1024_with_guidance() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        Team::new(machine(1024))
            .sched(SchedPolicy::Det)
            .exec(ExecMode::Thread)
            .run(|ctx| ctx.pe())
    }))
    .expect_err("thread mode must refuse P=1024");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("--exec event"),
        "refusal must point at the event core: {msg}"
    );
}

// -------------------------------------- deadlock diagnosis regression

/// A logic deadlock (a recv no send will ever match) produces the same
/// scheduler diagnostic on both backends.
#[test]
fn deadlock_diagnosis_is_identical_across_backends() {
    let diagnose = |exec: ExecMode| -> String {
        let mach = Arc::new(machine::Machine::new(
            2,
            machine::MachineConfig::test_tiny(),
        ));
        let world = Arc::new(mp::MpWorld::new(Arc::clone(&mach)));
        let err = catch_unwind(AssertUnwindSafe(|| {
            Team::new(mach)
                .sched(SchedPolicy::Det)
                .exec(exec)
                .run(move |ctx| {
                    if ctx.pe() == 0 {
                        // No PE ever sends tag 9: a true logic deadlock.
                        world.recv::<u64>(
                            ctx,
                            mp::RecvSpec {
                                src: Some(1),
                                tag: Some(9),
                            },
                        );
                    }
                })
        }))
        .expect_err("the deadlocked team must panic");
        err.downcast_ref::<String>()
            .cloned()
            .expect("diagnostic panics carry a String payload")
    };
    let t = diagnose(ExecMode::Thread);
    let e = diagnose(ExecMode::Event);
    assert!(
        t.contains("cooperative scheduler deadlock"),
        "must diagnose a logic deadlock: {t}"
    );
    assert_eq!(t, e, "backends must produce the identical diagnostic");
}

/// A dead-link block (the fault plan partitioned the machine) is
/// diagnosed as a *network partition* — not a logic deadlock — and the
/// diagnostic is identical on both backends.
#[test]
fn partition_diagnosis_is_identical_across_backends() {
    use origin2k::machine::{ContentionMode, FaultMode};
    let diagnose = |exec: ExecMode| -> String {
        // 8 PEs → 4 nodes, 2 routers; killing the single r0d0 edge severs
        // rtr0 from rtr1 with nothing to detour over.
        let mach = Arc::new(Machine::new(
            8,
            MachineConfig {
                contention: ContentionMode::Queued,
                fault: FaultMode::parse("plan:r0d0:kill").expect("valid fault spec"),
                ..MachineConfig::origin2000()
            },
        ));
        let err = catch_unwind(AssertUnwindSafe(|| {
            Team::new(mach)
                .sched(SchedPolicy::Det)
                .exec(exec)
                .run(|ctx| {
                    if ctx.pe() == 0 {
                        // Every route to node 2 crosses the severed edge.
                        ctx.net_delay_to_node(2, 1_024);
                    }
                })
        }))
        .expect_err("the partitioned team must panic");
        err.downcast_ref::<String>()
            .cloned()
            .expect("diagnostic panics carry a String payload")
    };
    let t = diagnose(ExecMode::Thread);
    let e = diagnose(ExecMode::Event);
    assert!(
        t.contains("network partition"),
        "must diagnose a partition: {t}"
    );
    assert!(
        !t.contains("cooperative scheduler deadlock"),
        "must not misdiagnose as a logic deadlock: {t}"
    );
    assert_eq!(t, e, "backends must produce the identical diagnostic");
}

//! Model-level invariants measured end to end through the runtimes — the
//! relationships that make the paper's comparison meaningful must hold for
//! the *executed* primitives, not just the cost tables.

use std::sync::Arc;

use origin2k::machine::{Machine, MachineConfig};
use origin2k::mp::{MpWorld, RecvSpec};
use origin2k::parallel::Team;
use origin2k::sas::SasWorld;
use origin2k::shmem::SymWorld;

fn machine(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::origin2000()))
}

/// Time one closure on PE 0 of a fresh 8-PE team, in virtual ns.
fn timed<F>(f: F) -> u64
where
    F: Fn(&mut origin2k::parallel::Ctx) + Sync,
{
    let run = Team::new(machine(8)).run(|ctx| {
        let t0 = ctx.now();
        f(ctx);
        ctx.barrier();
        if ctx.pe() == 0 {
            ctx.now() - t0
        } else {
            0
        }
    });
    run.results[0]
}

#[test]
fn executed_put_beats_executed_message() {
    let m = machine(8);
    let mpw = MpWorld::new(Arc::clone(&m));
    let shw = SymWorld::new(Arc::clone(&m));
    let msg_time = {
        let run = Team::new(Arc::clone(&m)).run(|ctx| {
            let t0 = ctx.now();
            if ctx.pe() == 0 {
                mpw.send(ctx, 7, 1, &[0u64; 16]);
            } else if ctx.pe() == 7 {
                let _ = mpw.recv::<u64>(ctx, RecvSpec::from(0, 1));
            }
            ctx.barrier();
            ctx.now() - t0
        });
        run.results[7]
    };
    let put_time = {
        let run = Team::new(m).run(|ctx| {
            let s = shw.alloc::<u64>(ctx, 16);
            let t0 = ctx.now();
            if ctx.pe() == 0 {
                s.put(ctx, 7, 0, &[0u64; 16]);
            }
            ctx.barrier();
            if ctx.pe() == 0 {
                ctx.now() - t0
            } else {
                0
            }
        });
        run.results[0]
    };
    assert!(
        put_time < msg_time,
        "one-sided 128 B ({put_time}) must beat two-sided ({msg_time})"
    );
}

#[test]
fn executed_line_fetch_beats_both_explicit_models() {
    let m = machine(8);
    let sas = SasWorld::new(Arc::clone(&m));
    let fetch = {
        let run = Team::new(m).run(|ctx| {
            let s = sas.alloc::<u64>(ctx, 64);
            let mut pe = sas.pe();
            if ctx.pe() == 0 {
                for i in 0..16 {
                    pe.write(ctx, &s, i, i as u64);
                }
            }
            sas.barrier(ctx);
            let t0 = ctx.now();
            if ctx.pe() == 7 {
                let _ = pe.read(ctx, &s, 0); // one dirty remote line
            }
            sas.barrier(ctx);
            if ctx.pe() == 7 {
                ctx.now() - t0
            } else {
                0
            }
        });
        run.results[7]
    };
    let cfg = MachineConfig::origin2000();
    assert!(
        fetch < cfg.mp_send_overhead + cfg.mp_recv_overhead,
        "a coherence fetch ({fetch}) must undercut message software overhead alone"
    );
    assert!(fetch > cfg.lat_local_mem, "remote fetch is not free");
}

#[test]
fn barrier_cost_grows_sublinearly_when_executed() {
    let mut costs = Vec::new();
    for p in [2usize, 8, 32] {
        let run = Team::new(machine(p)).run(|ctx| {
            let t0 = ctx.now();
            for _ in 0..4 {
                ctx.barrier();
            }
            (ctx.now() - t0) / 4
        });
        costs.push(run.results[0]);
    }
    assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
    // 16x the PEs costs less than 16x the time (depth and hop span both
    // grow logarithmically, so the product is ~log² — still sublinear).
    assert!(
        costs[2] < 16 * costs[0],
        "sublinear growth expected: {costs:?}"
    );
}

#[test]
fn timed_helper_smoke() {
    let t = timed(|ctx| ctx.compute(1_000));
    assert!(t >= 1_000);
}

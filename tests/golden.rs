//! Golden-result conformance tests.
//!
//! These pin the *current* outputs of the reconstructed evaluation suite —
//! programming-effort line counts (T2), partitioner quality (T3), model
//! speedups (F1/F3), and communication volumes (F5) — at quick problem
//! sizes, under the deterministic scheduler so every number is exactly
//! reproducible. A failure here means the simulated results moved; if the
//! move is intentional, regenerate the constants with
//!
//! ```text
//! cargo test --test golden -- --ignored --nocapture print_current_goldens
//! ```
//!
//! and update both this file and EXPERIMENTS.md.

use origin2k::prelude::*;

fn machine(p: usize) -> std::sync::Arc<Machine> {
    Machine::origin2000(p)
}

/// Every test in this binary runs under the deterministic scheduler, so
/// CC-SAS timings and counters are bitwise-stable (idempotent; tests run
/// concurrently in one process).
fn pin_det() {
    origin2k::sched::set_default_policy(SchedPolicy::Det);
}

// ------------------------------------------------------------------ T2

/// `(app, model, effective LoC)` — the paper's programming-effort story:
/// CC-SAS shortest, MPI longest, for both applications.
const T2_LOC: [(&str, &str, usize); 6] = [
    ("N-body", "MPI", T2_NBODY_MP),
    ("N-body", "SHMEM", T2_NBODY_SHMEM),
    ("N-body", "CC-SAS", T2_NBODY_SAS),
    ("AMR", "MPI", T2_AMR_MP),
    ("AMR", "SHMEM", T2_AMR_SHMEM),
    ("AMR", "CC-SAS", T2_AMR_SAS),
];
const T2_NBODY_MP: usize = 141;
const T2_NBODY_SHMEM: usize = 213;
const T2_NBODY_SAS: usize = 163;
const T2_AMR_MP: usize = 174;
const T2_AMR_SHMEM: usize = 171;
const T2_AMR_SAS: usize = 138;

#[test]
fn t2_effort_line_counts_are_pinned() {
    let table = origin2k::core::effort_table();
    assert_eq!(table.len(), T2_LOC.len());
    for (row, (app, model, loc)) in table.iter().zip(T2_LOC) {
        assert_eq!(row.app.name(), app);
        assert_eq!(row.model.name(), model);
        assert_eq!(
            row.loc, loc,
            "{app}/{model}: effective LoC moved (edit the pin if the app source change was intentional)"
        );
    }
}

#[cfg(test)]
mod t3 {
    use origin2k::mesh::adaptive::AdaptiveMesh;
    use origin2k::mesh::dual::dual_graph;
    use origin2k::partition::{
        edge_cut, hilbert_partition, imbalance, morton_partition, multilevel_partition,
        rcb_partition, CsrGraph, WeightedPoint,
    };
    use origin2k::prelude::*;

    pub const NPARTS: usize = 8;
    /// `(partitioner, edge cut, imbalance·1000)` on the quick adapted mesh.
    pub const T3_GOLDEN: [(&str, usize, u64); 4] = [
        ("rcb", T3_RCB.0, T3_RCB.1),
        ("morton", T3_MORTON.0, T3_MORTON.1),
        ("hilbert", T3_HILBERT.0, T3_HILBERT.1),
        ("multilevel", T3_MULTILEVEL.0, T3_MULTILEVEL.1),
    ];
    const T3_RCB: (usize, u64) = (101, 1000);
    const T3_MORTON: (usize, u64) = (122, 1000);
    const T3_HILBERT: (usize, u64) = (158, 1000);
    const T3_MULTILEVEL: (usize, u64) = (94, 1093);

    /// The T3 mesh at quick size: a 16×16 base adapted for two steps.
    pub fn quality() -> Vec<(&'static str, usize, u64)> {
        let mut mesh = AdaptiveMesh::structured(16, 16, 1.0, 1.0);
        let cfg = AmrConfig {
            nx: 16,
            ny: 16,
            ..AmrConfig::default()
        };
        for step in 0..2 {
            origin2k::mesh::indicator::adapt_step(
                &mut mesh,
                &cfg.shock(),
                cfg.front_time(step),
                cfg.refine_band,
                cfg.coarsen_band,
                cfg.max_level,
            );
        }
        let dual = dual_graph(&mesh);
        let pts: Vec<WeightedPoint> = dual
            .centroids
            .iter()
            .map(|c| WeightedPoint::new(c.x, c.y, 1.0))
            .collect();
        let lists: Vec<Vec<u32>> = (0..dual.len())
            .map(|v| dual.neighbors(v).to_vec())
            .collect();
        let g = CsrGraph::from_lists(&lists, vec![1.0; dual.len()]);
        let mut out = Vec::new();
        let mut eval = |name: &'static str, parts: &[u32]| {
            // Imbalance is a ratio of f64 weights over integer counts:
            // exactly reproducible; pinned at fixed precision.
            let imb = (imbalance(&g.vwgt, parts, NPARTS) * 1000.0).round() as u64;
            out.push((name, edge_cut(&g, parts), imb));
        };
        eval("rcb", &rcb_partition(&pts, NPARTS));
        eval("morton", &morton_partition(&pts, NPARTS));
        eval("hilbert", &hilbert_partition(&pts, NPARTS));
        eval("multilevel", &multilevel_partition(&g, NPARTS));
        out
    }

    #[test]
    fn t3_partitioner_quality_is_pinned() {
        assert_eq!(quality(), T3_GOLDEN.to_vec());
    }
}

// --------------------------------------------------------------- F1/F3

/// `(model, sim_time at P=1, sim_time at P=4)` in simulated ns, quick
/// sizes, deterministic scheduler. Speedup = column2 / column3.
const F1_NBODY: [(&str, u64, u64); 3] = [
    ("MPI", F1_MP.0, F1_MP.1),
    ("SHMEM", F1_SHMEM.0, F1_SHMEM.1),
    ("CC-SAS", F1_SAS.0, F1_SAS.1),
];
const F1_MP: (u64, u64) = (17_592_640, 5_240_819);
const F1_SHMEM: (u64, u64) = (17_593_400, 5_142_477);
const F1_SAS: (u64, u64) = (17_480_000, 5_427_022);

const F3_AMR: [(&str, u64, u64); 3] = [
    ("MPI", F3_MP.0, F3_MP.1),
    ("SHMEM", F3_SHMEM.0, F3_SHMEM.1),
    ("CC-SAS", F3_SAS.0, F3_SAS.1),
];
const F3_MP: (u64, u64) = (1_594_400, 895_277);
const F3_SHMEM: (u64, u64) = (1_594_400, 769_183);
const F3_SAS: (u64, u64) = (1_365_360, 450_742);

fn model_times(app: App) -> Vec<(&'static str, u64, u64)> {
    pin_det();
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    Model::ALL
        .iter()
        .map(|&m| {
            let t1 = run_app(machine(1), app, m, &nb, &am).sim_time;
            let t4 = run_app(machine(4), app, m, &nb, &am).sim_time;
            (m.name(), t1, t4)
        })
        .collect()
}

#[test]
fn f1_nbody_times_and_speedups_are_pinned() {
    let got = model_times(App::NBody);
    assert_eq!(got, F1_NBODY.to_vec());
    for (m, t1, t4) in got {
        assert!(t4 < t1, "{m} must speed up: {t1} -> {t4}");
    }
}

#[test]
fn f3_amr_times_and_speedups_are_pinned() {
    let got = model_times(App::Amr);
    assert_eq!(got, F3_AMR.to_vec());
    for (m, t1, t4) in got {
        assert!(t4 < t1, "{m} must speed up: {t1} -> {t4}");
    }
}

// ------------------------------------------------------------------ F5

/// Communication volumes at P=4, quick AMR: explicit bytes for MP/SHMEM,
/// coherence-implicit bytes (128 B × remote misses) for CC-SAS.
const F5_AMR_COMM: [(&str, u64); 3] = [
    ("MPI", F5_MP_BYTES),
    ("SHMEM", F5_SHMEM_BYTES),
    ("CC-SAS", F5_SAS_BYTES),
];
const F5_MP_BYTES: u64 = 81_736;
const F5_SHMEM_BYTES: u64 = 10_496;
const F5_SAS_BYTES: u64 = 23_680;

fn comm_volumes() -> Vec<(&'static str, u64)> {
    pin_det();
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    Model::ALL
        .iter()
        .map(|&m| {
            let r = run_app(machine(4), App::Amr, m, &nb, &am);
            let bytes = match m {
                Model::Sas => r.counters.implicit_comm_bytes(128),
                _ => r.counters.explicit_comm_bytes(),
            };
            (m.name(), bytes)
        })
        .collect()
}

#[test]
fn f5_amr_comm_volumes_are_pinned() {
    assert_eq!(comm_volumes(), F5_AMR_COMM.to_vec());
}

// ----------------------------------------------------- repro determinism

/// The acceptance test for the deterministic scheduler: regenerating F2
/// twice under `--sched det` produces bitwise-identical report text
/// (tables include CC-SAS timings, the schedule-sensitive part).
#[test]
fn repro_f2_is_bitwise_identical_under_det() {
    pin_det();
    let a = origin2k_bench_f2();
    let b = origin2k_bench_f2();
    assert_eq!(a, b, "repro f2 must be bitwise reproducible under det");
    assert!(a.contains("CC-SAS"), "sanity: F2 covers the SAS model");
}

fn origin2k_bench_f2() -> String {
    o2k_bench::run_experiment("f2", true)
}

/// Same property for the fault-injection experiment: N2 threads a
/// degraded link and a killed router edge through routing, detours, and
/// the per-phase hotspot report, and all of it must replay bitwise (the
/// fault state of a transfer is a pure function of link and departure
/// time, and N2 pins the deterministic scheduler internally).
#[test]
fn repro_n2_is_bitwise_identical_under_det() {
    pin_det();
    let a = o2k_bench::run_experiment("n2", true);
    let b = o2k_bench::run_experiment("n2", true);
    assert_eq!(a, b, "repro n2 must be bitwise reproducible under det");
    assert!(
        a.contains("[deg8]") && a.contains("detours"),
        "sanity: N2 reports the fault annotations"
    );
}

/// Same property for the serving experiment: Q1 threads a million-scale
/// open-loop request stream through all three models, four fabric
/// conditions, HDR quantiles, and the hotspot reports — and the whole
/// rendered archive must replay bitwise (Q1 pins the deterministic
/// scheduler internally).
#[test]
fn repro_q1_is_bitwise_identical_under_det() {
    pin_det();
    let a = o2k_bench::run_experiment("q1", true);
    let b = o2k_bench::run_experiment("q1", true);
    assert_eq!(a, b, "repro q1 must be bitwise reproducible under det");
    assert!(
        a.contains("p99 ns") && a.contains("sick"),
        "sanity: Q1 reports tail latencies across fabric conditions"
    );
}

/// The serving workload's full result set — simulated time, quantiles,
/// merged counters, per-link NetStats, and the schedule fingerprint —
/// replays bitwise under the deterministic scheduler for every model.
#[test]
fn serve_results_are_bitwise_reproducible_under_det() {
    pin_det();
    let cfg = origin2k::serve::ServeConfig::small();
    for model in Model::ALL {
        let go =
            || origin2k::serve::run_sched(queued_machine(8), model, &cfg, Some(SchedPolicy::Det));
        let (a, b) = (go(), go());
        assert_eq!(a.sim_time, b.sim_time, "{model:?} sim time");
        assert_eq!(a.checksum, b.checksum, "{model:?} checksum");
        assert_eq!(a.counters, b.counters, "{model:?} counters");
        assert_eq!(a.serve, b.serve, "{model:?} latency quantiles");
        assert_eq!(a.net, b.net, "{model:?} per-link NetStats");
        assert_eq!(
            a.sched.as_ref().map(|s| s.fingerprint),
            b.sched.as_ref().map(|s| s.fingerprint),
            "{model:?} schedule fingerprint"
        );
    }
}

// ------------------------------------------ contention-model determinism

/// The Origin2000 machine with the interconnect queueing model on.
fn queued_machine(p: usize) -> std::sync::Arc<Machine> {
    use origin2k::machine::ContentionMode;
    std::sync::Arc::new(Machine::new(
        p,
        MachineConfig {
            contention: ContentionMode::Queued,
            ..MachineConfig::origin2000()
        },
    ))
}

/// Contention changes *when* transfers complete, never *whether* the run
/// is reproducible: under the deterministic scheduler, two queued-mode
/// runs agree bitwise — simulated times, merged counters, per-link
/// network statistics, and the schedule fingerprint.
#[test]
fn queued_contention_is_bitwise_reproducible_under_det() {
    pin_det();
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let a = run_app(queued_machine(4), app, model, &nb, &am);
            let b = run_app(queued_machine(4), app, model, &nb, &am);
            let tag = format!("{}/{}", app.name(), model.name());
            assert_eq!(a.sim_time, b.sim_time, "{tag}: sim time must repeat");
            assert_eq!(a.counters, b.counters, "{tag}: counters must repeat");
            assert_eq!(a.net, b.net, "{tag}: NetStats must repeat");
            assert_eq!(a.sched, b.sched, "{tag}: schedule fingerprint must repeat");
            let net = a.net.expect("queued mode reports NetStats");
            assert!(net.transfers > 0, "{tag}: remote traffic must be routed");
        }
    }
}

/// Off-mode runs never construct the network simulator, and the queued
/// model only ever adds delay relative to the analytic costs (the physics
/// checksum is identical either way).
#[test]
fn queued_contention_only_adds_delay() {
    pin_det();
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let off = run_app(machine(4), app, model, &nb, &am);
            let q = run_app(queued_machine(4), app, model, &nb, &am);
            let tag = format!("{}/{}", app.name(), model.name());
            assert!(
                off.net.is_none(),
                "{tag}: off mode must not report NetStats"
            );
            assert!(
                q.sim_time >= off.sim_time,
                "{tag}: queueing can only slow a run ({} -> {})",
                off.sim_time,
                q.sim_time
            );
            assert_eq!(
                q.checksum, off.checksum,
                "{tag}: contention must not move physics"
            );
        }
    }
}

// ------------------------------------------------ resource-fabric goldens

/// The Origin2000 machine on the full contended-resource fabric: links
/// plus per-node SysAD buses and per-router hub arbitration ports.
fn fabric_machine(p: usize) -> std::sync::Arc<Machine> {
    use origin2k::machine::ContentionMode;
    std::sync::Arc::new(Machine::new(
        p,
        MachineConfig {
            contention: ContentionMode::Fabric,
            ..MachineConfig::origin2000()
        },
    ))
}

/// The fabric generalises the link-only queueing model; it must inherit
/// its reproducibility wholesale — times, counters (including the new
/// bus/hub queueing counters), per-resource statistics, fingerprints.
#[test]
fn fabric_contention_is_bitwise_reproducible_under_det() {
    pin_det();
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let a = run_app(fabric_machine(4), app, model, &nb, &am);
            let b = run_app(fabric_machine(4), app, model, &nb, &am);
            let tag = format!("{}/{}", app.name(), model.name());
            assert_eq!(a.sim_time, b.sim_time, "{tag}: sim time must repeat");
            assert_eq!(a.counters, b.counters, "{tag}: counters must repeat");
            assert_eq!(a.net, b.net, "{tag}: NetStats must repeat");
            let net = a.net.expect("fabric mode reports NetStats");
            assert!(
                net.bus.transfers > 0,
                "{tag}: fabric traffic must arbitrate for node buses"
            );
        }
    }
}

/// Fabric arbitration only ever adds delay on top of the analytic costs,
/// and — like every contention mode — never moves the physics.
#[test]
fn fabric_contention_only_adds_delay() {
    pin_det();
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let off = run_app(machine(4), app, model, &nb, &am);
            let f = run_app(fabric_machine(4), app, model, &nb, &am);
            let tag = format!("{}/{}", app.name(), model.name());
            assert!(
                f.sim_time >= off.sim_time,
                "{tag}: fabric arbitration can only slow a run ({} -> {})",
                off.sim_time,
                f.sim_time
            );
            assert_eq!(
                f.checksum, off.checksum,
                "{tag}: contention must not move physics"
            );
        }
    }
}

// ------------------------------------------------------------- harvest

/// Regenerates every pinned constant above. Run with
/// `cargo test --test golden -- --ignored --nocapture print_current_goldens`.
#[test]
#[ignore]
fn print_current_goldens() {
    pin_det();
    println!("== T2 ==");
    for r in origin2k::core::effort_table() {
        println!("{} / {}: {}", r.app.name(), r.model.name(), r.loc);
    }
    println!("== T3 ==");
    for (name, cut, imb) in t3::quality() {
        println!("{name}: ({cut}, {imb})");
    }
    println!("== F1 ==");
    for (m, t1, t4) in model_times(App::NBody) {
        println!("{m}: ({t1}, {t4})");
    }
    println!("== F3 ==");
    for (m, t1, t4) in model_times(App::Amr) {
        println!("{m}: ({t1}, {t4})");
    }
    println!("== F5 ==");
    for (m, b) in comm_volumes() {
        println!("{m}: {b}");
    }
}

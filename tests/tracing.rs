//! End-to-end properties of the o2k-trace subsystem: traces conserve the
//! clock's time accounting exactly, tracing never perturbs simulated
//! results, and the F9 experiment archives Perfetto-loadable traces.

use std::sync::{Arc, Mutex, OnceLock};

use apps::{AmrConfig, App, Model, NBodyConfig};
use machine::{Machine, MachineConfig};

/// The tracing flag and sink are process-global; tests that toggle them
/// must not interleave.
fn global_trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn machine(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::origin2000()))
}

fn amr_cfg() -> AmrConfig {
    AmrConfig::small()
}

fn nbody_cfg() -> NBodyConfig {
    NBodyConfig {
        n: 256,
        steps: 1,
        ..NBodyConfig::default()
    }
}

/// Per-PE event spans must sum, per category, to exactly the clock's own
/// breakdown: every nanosecond the runtimes charge is captured by exactly
/// one recorded event.
#[test]
fn trace_conserves_clock_breakdown() {
    let _g = global_trace_lock().lock().unwrap();
    o2k_trace::set_enabled(true);
    for model in Model::WITH_HYBRID {
        let r = apps::run_app(machine(4), App::Amr, model, &nbody_cfg(), &amr_cfg());
        let trace = r
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{}: tracing enabled but no trace collected", model.name()));
        trace.validate().expect("well-formed trace");
        assert_eq!(trace.pes(), 4);
        for pe in 0..4 {
            let from_events = trace.pe_breakdown(pe);
            let from_clock = r.per_pe[pe];
            assert_eq!(
                (
                    from_events.busy,
                    from_events.local,
                    from_events.remote,
                    from_events.sync
                ),
                (
                    from_clock.busy,
                    from_clock.local,
                    from_clock.remote,
                    from_clock.sync
                ),
                "{} PE {pe}: trace must account for every charged nanosecond",
                model.name()
            );
        }
    }
    o2k_trace::set_enabled(false);
    let _ = o2k_trace::sink_drain();
}

/// Tracing must be a pure observer: enabling it cannot change any
/// simulated time or physics result.
///
/// MP and SHMEM runs are fully deterministic, so traced and untraced
/// runs must be bit-identical (sim_time, checksum, every counter). The
/// CC-SAS directory resolves first-touch homing and sharer-list order by
/// real thread interleaving, so its local/remote miss *split* varies
/// between any two runs — traced or not (verified against the seed by
/// running f8 twice). For SAS we therefore assert what the protocol
/// does guarantee: identical physics and conserved access totals.
#[test]
fn tracing_does_not_perturb_results() {
    let _g = global_trace_lock().lock().unwrap();
    let run = |app, model| apps::run_app(machine(4), app, model, &nbody_cfg(), &amr_cfg());
    for app in [App::Amr, App::NBody] {
        for model in [Model::Mp, Model::Shmem] {
            let base = run(app, model);
            o2k_trace::set_enabled(true);
            let traced = run(app, model);
            o2k_trace::set_enabled(false);
            assert_eq!(
                (base.sim_time, base.checksum.to_bits(), &base.counters),
                (traced.sim_time, traced.checksum.to_bits(), &traced.counters),
                "{} {}: tracing perturbed a deterministic run",
                app.name(),
                model.name()
            );
            assert!(base.trace.is_none() && traced.trace.is_some());
        }
        let base = run(app, Model::Sas);
        o2k_trace::set_enabled(true);
        let traced = run(app, Model::Sas);
        o2k_trace::set_enabled(false);
        let (b, t) = (&base.counters, &traced.counters);
        assert_eq!(base.checksum.to_bits(), traced.checksum.to_bits());
        assert_eq!(
            b.cache_hits + b.misses_local + b.misses_remote,
            t.cache_hits + t.misses_local + t.misses_remote,
            "{}: the access stream is program-determined",
            app.name()
        );
        assert_eq!((b.barriers, b.lock_acquires), (t.barriers, t.lock_acquires));
    }
    let _ = o2k_trace::sink_drain();
}

/// A team-level trace request works without the global flag and captures
/// the wait structure of an unbalanced barrier.
#[test]
fn team_level_tracing_captures_barrier_waits() {
    use parallel::{EventKind, Team};
    let run = Team::new(machine(4)).trace(true).run(|ctx| {
        ctx.compute(1_000 * (ctx.pe() as u64 + 1));
        ctx.barrier();
        ctx.now()
    });
    assert!(run.is_traced());
    let trace = run.trace();
    trace.validate().expect("well-formed");
    // PEs 0..2 waited on PE 3, the last arriver; each wait edge names it.
    let waits: Vec<_> = trace
        .per_pe
        .iter()
        .flatten()
        .filter(|e| e.kind == EventKind::BarrierWait)
        .collect();
    assert_eq!(waits.len(), 3, "three PEs waited");
    for w in waits {
        assert_eq!(w.dep.map(|d| d.pe), Some(3));
    }
    let stats = o2k_trace::critpath::critical_path(&trace);
    assert_eq!(stats.total, run.sim_time());
    assert_eq!(stats.attributed() + stats.untracked, stats.total);
}

/// Under the resource fabric, the Perfetto "interconnect" process grows
/// one track per bus/hub resource that carried traffic, alongside the
/// link tracks — the export is name-driven, so this pins the wiring from
/// `NetSim` resource names through `Team::trace` to the JSON.
#[test]
fn fabric_trace_exports_bus_and_hub_tracks() {
    let _g = global_trace_lock().lock().unwrap();
    o2k_trace::set_enabled(true);
    let fabric = Arc::new(Machine::new(
        4,
        MachineConfig {
            contention: machine::ContentionMode::Fabric,
            ..MachineConfig::origin2000()
        },
    ));
    let r = apps::run_app(fabric, App::Amr, Model::Sas, &nbody_cfg(), &amr_cfg());
    o2k_trace::set_enabled(false);
    let trace = r.trace.as_ref().expect("trace collected");
    let json = o2k_trace::chrome::to_chrome_json(trace);
    assert!(json.contains("\"name\":\"interconnect\""));
    for needle in ["bus:node", "hub:rtr", "node0→rtr0"] {
        assert!(json.contains(needle), "missing {needle} track");
    }
    let _ = o2k_trace::sink_drain();
}

/// `repro f9 --quick` (driven through the library) archives one
/// Perfetto-loadable trace per app/model cell.
#[test]
fn f9_archives_perfetto_traces() {
    let _g = global_trace_lock().lock().unwrap();
    let dir = std::env::temp_dir().join("o2k_f9_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("O2K_RESULTS_DIR", &dir);
    let out = o2k_bench::run_experiment("f9", true);
    std::env::remove_var("O2K_RESULTS_DIR");
    assert!(out.contains("critical path:"), "f9 output:\n{out}");
    assert!(
        out.contains("per adaptation step"),
        "Counters::diff table missing"
    );
    let mut n = 0;
    for entry in std::fs::read_dir(&dir).expect("f9 out dir") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let body = std::fs::read_to_string(&path).unwrap();
            assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
            assert!(body.contains("\"traceEvents\""));
            n += 1;
        }
    }
    assert_eq!(n, 6, "one trace per app x model cell");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Schedule-exploration harness: replay the runtime under many seeded
//! interleavings and check that what *must* hold under every schedule
//! actually does.
//!
//! The `Explore { seed }` policy makes the cooperative scheduler pick a
//! uniformly-random runnable PE at every yield point — each seed is one
//! reproducible interleaving, and sweeping seeds is a poor man's model
//! checker for the synchronisation substrate. The invariants:
//!
//! * the AMR CC-SAS self-scheduled step computes the same physics under
//!   every interleaving (and the sweep genuinely explores: the schedule
//!   fingerprints are almost all distinct);
//! * barriers separate epochs (pre-barrier writes visible after, clocks
//!   aligned);
//! * locks provide mutual exclusion and every contender gets through;
//! * shmem puts complete before the barrier-separated reader looks;
//! * the race detector stays quiet on the barrier/atomic-clean AMR step.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use origin2k::machine::TimeCat;
use origin2k::parallel::{SimLock, Team};
use origin2k::prelude::*;
use origin2k::sas::PagePolicy;

fn tiny(p: usize) -> std::sync::Arc<Machine> {
    Arc::new(Machine::new(p, MachineConfig::test_tiny()))
}

fn explore_team(p: usize, seed: u64) -> Team {
    Team::new(tiny(p)).sched(SchedPolicy::Explore { seed })
}

/// One quick self-scheduled AMR step — the most schedule-sensitive code in
/// the repo (dynamic chunk claiming over a shared fetch-add cursor).
fn amr_step_cfg() -> AmrConfig {
    AmrConfig {
        steps: 1,
        sas_self_schedule: true,
        ..AmrConfig::small()
    }
}

/// The acceptance test for the exploration harness: >=100 distinct seeded
/// interleavings of an AMR CC-SAS step, every one producing the reference
/// physics.
#[test]
fn amr_sas_step_invariant_over_100_explored_schedules() {
    let cfg = amr_step_cfg();
    let run = |policy| {
        origin2k::apps::amr_sas::run_with(
            Machine::origin2000(4),
            &cfg,
            PagePolicy::FirstTouch,
            Some(policy),
        )
    };
    let reference = run(SchedPolicy::Det);
    let mut fingerprints = HashSet::new();
    for seed in 0..=100u64 {
        let r = run(SchedPolicy::Explore { seed });
        assert_eq!(
            r.checksum, reference.checksum,
            "seed {seed}: physics must be schedule-independent"
        );
        fingerprints.insert(r.sched.expect("explore reports stats").fingerprint);
    }
    // The sweep must genuinely explore the schedule space, not replay one
    // interleaving 101 times.
    assert!(
        fingerprints.len() >= 90,
        "only {} distinct schedules out of 101 seeds",
        fingerprints.len()
    );
}

/// Replaying one seed must reproduce the interleaving exactly.
#[test]
fn explored_schedules_replay_bitwise() {
    let cfg = amr_step_cfg();
    let run = || {
        origin2k::apps::amr_sas::run_with(
            Machine::origin2000(4),
            &cfg,
            PagePolicy::FirstTouch,
            Some(SchedPolicy::Explore { seed: 42 }),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.sim_time, b.sim_time);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.sched, b.sched);
}

/// Barrier separation: every pre-barrier write is visible after the
/// barrier and the barrier aligns all virtual clocks, under every
/// explored interleaving.
#[test]
fn barriers_separate_epochs_under_all_schedules() {
    for p in [2usize, 4, 8] {
        for seed in 0..34u64 {
            let slots: Vec<AtomicU64> = (0..p).map(|_| AtomicU64::new(0)).collect();
            let run = explore_team(p, seed).run(|ctx| {
                // Unequal work so the schedule has real freedom.
                ctx.compute(37 * (ctx.pe() as u64 % 3 + 1));
                slots[ctx.pe()].store(ctx.pe() as u64 + 1, Ordering::Relaxed);
                ctx.barrier();
                let sum: u64 = slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                (sum, ctx.now())
            });
            let expect: u64 = (1..=p as u64).sum();
            for &(sum, _) in &run.results {
                assert_eq!(sum, expect, "P={p} seed={seed}: write lost at barrier");
            }
            let t0 = run.results[0].1;
            assert!(
                run.results.iter().all(|&(_, t)| t == t0),
                "P={p} seed={seed}: barrier must align clocks"
            );
        }
    }
}

/// Lock mutual exclusion and progress: a non-atomic read-modify-write
/// under the lock never loses an update, the critical sections never
/// overlap, and every PE gets the lock every round (no starvation).
#[test]
fn locks_exclude_and_admit_everyone_under_all_schedules() {
    const ROUNDS: usize = 3;
    for p in [2usize, 4, 8] {
        for seed in 0..34u64 {
            let lock = SimLock::new(0);
            let counter = AtomicU64::new(0);
            let in_crit = AtomicU64::new(0);
            explore_team(p, seed).run(|ctx| {
                for round in 0..ROUNDS {
                    ctx.compute(13 * ((ctx.pe() + round) as u64 % 4 + 1));
                    let g = lock.acquire(ctx);
                    assert_eq!(
                        in_crit.fetch_add(1, Ordering::SeqCst),
                        0,
                        "P={p} seed={seed}: overlapping critical sections"
                    );
                    // Deliberately racy RMW — only safe if the lock works.
                    let v = counter.load(Ordering::Relaxed);
                    ctx.advance(21, TimeCat::Busy);
                    counter.store(v + 1, Ordering::Relaxed);
                    in_crit.fetch_sub(1, Ordering::SeqCst);
                    g.release(ctx);
                }
            });
            assert_eq!(
                counter.load(Ordering::SeqCst),
                (p * ROUNDS) as u64,
                "P={p} seed={seed}: lost update under lock"
            );
        }
    }
}

/// One-sided completion: a put followed by a barrier is visible to the
/// target's local read; a get after the barrier returns the posted value.
#[test]
fn shmem_puts_and_gets_complete_under_all_schedules() {
    use origin2k::shmem::SymWorld;
    for p in [2usize, 4, 8] {
        for seed in 0..34u64 {
            let machine = tiny(p);
            let heap = SymWorld::new(Arc::clone(&machine));
            let run = Team::new(machine)
                .sched(SchedPolicy::Explore { seed })
                .run(|ctx| {
                    let sym = heap.alloc::<u64>(ctx, 2);
                    let me = ctx.pe();
                    let right = (me + 1) % ctx.npes();
                    ctx.compute(29 * (me as u64 % 3 + 1));
                    // Ring put: everyone writes slot 0 of the right peer.
                    sym.put1(ctx, right, 0, 1000 + me as u64);
                    heap.barrier_all(ctx);
                    let local = sym.read_local1(ctx, 0);
                    // Get it back from the peer we wrote to.
                    let fetched = sym.get1(ctx, right, 0);
                    heap.barrier_all(ctx);
                    (local, fetched)
                });
            for (me, &(local, fetched)) in run.results.iter().enumerate() {
                let left = (me + p - 1) % p;
                assert_eq!(
                    local,
                    1000 + left as u64,
                    "P={p} seed={seed}: put from left neighbour not visible"
                );
                assert_eq!(
                    fetched,
                    1000 + me as u64,
                    "P={p} seed={seed}: get must see my own put"
                );
            }
        }
    }
}

/// The race detector across explored schedules: the barrier/atomic-clean
/// AMR step must never produce a data race, under any interleaving (false
/// sharing is expected — neighbouring triangles share lines by design).
#[test]
fn race_detector_stays_quiet_on_amr_under_exploration() {
    use origin2k::sas::{RaceKind, SasWorld};
    for seed in [0u64, 7, 23] {
        let machine = tiny(4);
        let world = Arc::new(SasWorld::new(Arc::clone(&machine)).detect_races());
        let w = Arc::clone(&world);
        Team::new(machine)
            .sched(SchedPolicy::Explore { seed })
            .run(|ctx| {
                // A miniature of the AMR sweep structure: atomic claim,
                // read epoch, barrier, write epoch.
                let field = w.alloc::<f64>(ctx, 64);
                let cursor = w.alloc::<u64>(ctx, 1);
                let mut pe = w.pe();
                let mut mine = Vec::new();
                loop {
                    let c = pe.fadd(ctx, &cursor, 0, 1u64) as usize;
                    if c * 8 >= 64 {
                        break;
                    }
                    for i in c * 8..(c + 1) * 8 {
                        let _ = pe.read(ctx, &field, i);
                        mine.push(i);
                    }
                }
                w.barrier(ctx);
                for &i in &mine {
                    pe.write(ctx, &field, i, i as f64);
                }
            });
        let races: Vec<_> = world
            .race_reports()
            .into_iter()
            .filter(|r| r.kind == RaceKind::DataRace)
            .collect();
        assert!(
            races.is_empty(),
            "seed {seed}: barrier-separated sweep must be race-free: {races:?}"
        );
    }
}

/// And the detector must still catch a real bug under exploration: the
/// same kernel without the barrier races on every schedule that
/// interleaves the epochs.
#[test]
fn race_detector_catches_seeded_unbarriered_writes() {
    use origin2k::sas::{RaceKind, SasWorld};
    let mut caught = 0;
    for seed in 0..8u64 {
        let machine = tiny(2);
        let world = Arc::new(SasWorld::new(Arc::clone(&machine)).detect_races());
        let w = Arc::clone(&world);
        Team::new(machine)
            .sched(SchedPolicy::Explore { seed })
            .run(|ctx| {
                let field = w.alloc::<u64>(ctx, 8);
                let mut pe = w.pe();
                pe.write(ctx, &field, 0, ctx.pe() as u64); // no barrier: racy
            });
        if world
            .race_reports()
            .iter()
            .any(|r| r.kind == RaceKind::DataRace)
        {
            caught += 1;
        }
    }
    assert_eq!(
        caught, 8,
        "the unsynchronised write must be flagged on every seed"
    );
}

/// Interconnect contention under schedule exploration: the queueing model
/// keys every delay off the deterministic virtual-time order, so each seed
/// replays bitwise (times, counters, and per-link NetStats), and the
/// physics never moves no matter how traffic is interleaved on the links.
#[test]
fn queued_contention_replays_and_keeps_physics_under_exploration() {
    use origin2k::machine::ContentionMode;
    let cfg = amr_step_cfg();
    let qm = || {
        Arc::new(Machine::new(
            4,
            MachineConfig {
                contention: ContentionMode::Queued,
                ..MachineConfig::origin2000()
            },
        ))
    };
    let run = |policy| {
        origin2k::apps::amr_sas::run_with(qm(), &cfg, PagePolicy::FirstTouch, Some(policy))
    };
    let reference = run(SchedPolicy::Det);
    let again = run(SchedPolicy::Det);
    assert_eq!(
        reference.sim_time, again.sim_time,
        "det must repeat bitwise"
    );
    assert_eq!(reference.counters, again.counters);
    assert_eq!(reference.net, again.net, "det must repeat NetStats bitwise");
    assert_eq!(reference.sched, again.sched);
    let net = reference.net.expect("queued mode reports NetStats");
    assert!(net.transfers > 0, "the step must route remote traffic");
    for seed in 0..25u64 {
        let r = run(SchedPolicy::Explore { seed });
        assert_eq!(
            r.checksum, reference.checksum,
            "seed {seed}: physics must be schedule-independent under contention"
        );
        let b = run(SchedPolicy::Explore { seed });
        assert_eq!(
            r.sim_time, b.sim_time,
            "seed {seed} must replay under contention"
        );
        assert_eq!(r.net, b.net, "seed {seed}: NetStats must replay");
    }
}

/// The `ChargeRun` engine must be *bitwise invisible*: coalescing a
/// coherence window's charges into one vectored `try_route_many` walk may
/// only change wall-clock cost, never a pick, a counter, a delay, or a
/// byte of physics. Sweep team size × policy × execution backend on a
/// contended machine (where the fabric queues actually move) and compare
/// a batched run against the scalar per-charge reference path.
mod charge_batching_properties {
    use super::*;
    use origin2k::machine::ContentionMode;
    use origin2k::parallel::set_charge_batching;
    use proptest::prelude::*;

    fn queued(p: usize) -> Arc<Machine> {
        Arc::new(Machine::new(
            p,
            MachineConfig {
                contention: ContentionMode::Queued,
                ..MachineConfig::origin2000()
            },
        ))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn batched_charging_is_bitwise_invisible(
            p_idx in 0usize..3,
            use_det in 0usize..2,
            event in 0usize..2,
            seed in 0u64..8,
        ) {
            let p = [2usize, 4, 8][p_idx];
            let policy = if use_det == 1 {
                SchedPolicy::Det
            } else {
                SchedPolicy::Explore { seed }
            };
            let exec = if event == 1 { ExecMode::Event } else { ExecMode::Thread };
            let cfg = super::amr_step_cfg();
            let run = |batched: bool| {
                set_charge_batching(batched);
                let r = run_app_opts(
                    queued(p),
                    App::Amr,
                    Model::Sas,
                    &NBodyConfig::small(),
                    &cfg,
                    RunOpts {
                        sched: Some(policy),
                        exec: Some(exec),
                        snap: None,
                    },
                );
                set_charge_batching(true);
                r
            };
            let a = run(true);
            let b = run(false);
            let tag = format!("P={p} {policy} {exec}");
            assert_eq!(a.checksum.to_bits(), b.checksum.to_bits(), "{tag}: checksum");
            assert_eq!(a.sim_time, b.sim_time, "{tag}: sim time");
            assert_eq!(a.counters, b.counters, "{tag}: counters");
            assert_eq!(a.net, b.net, "{tag}: NetStats");
            assert_eq!(a.sched, b.sched, "{tag}: schedule fingerprint");
        }
    }
}

/// Bounded-preemption schedules: mostly-deterministic with a seeded budget
/// of preemptions — still invariant-preserving, still reproducible.
#[test]
fn bounded_preemption_preserves_invariants() {
    let cfg = amr_step_cfg();
    let run = |seed, budget| {
        origin2k::apps::amr_sas::run_with(
            Machine::origin2000(4),
            &cfg,
            PagePolicy::FirstTouch,
            Some(SchedPolicy::BoundedPreempt { seed, budget }),
        )
    };
    let det = origin2k::apps::amr_sas::run_with(
        Machine::origin2000(4),
        &cfg,
        PagePolicy::FirstTouch,
        Some(SchedPolicy::Det),
    );
    for seed in 0..8u64 {
        let r = run(seed, 32);
        assert_eq!(r.checksum, det.checksum, "seed {seed}");
        let again = run(seed, 32);
        assert_eq!(r.sim_time, again.sim_time, "seed {seed} must replay");
        assert_eq!(r.sched, again.sched, "seed {seed} must replay");
    }
    // Zero budget degenerates to the deterministic schedule.
    let zero = run(5, 0);
    assert_eq!(
        zero.sched.unwrap().fingerprint,
        det.sched.unwrap().fingerprint
    );
}

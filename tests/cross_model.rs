//! Cross-model integration tests: the three programming models must
//! compute the *same physics* — the paper's comparison is only meaningful
//! because the implementations are numerically equivalent.

use origin2k::prelude::*;

fn machine(p: usize) -> std::sync::Arc<Machine> {
    Machine::origin2000(p)
}

#[test]
fn amr_checksums_agree_bitwise_across_models_and_pes() {
    let cfg = AmrConfig::small();
    let nb = NBodyConfig::small();
    let mut checks = Vec::new();
    for model in Model::ALL {
        for p in [1, 2, 5, 8] {
            let r = run_app(machine(p), App::Amr, model, &nb, &cfg);
            checks.push((model, p, r.checksum));
        }
    }
    let first = checks[0].2;
    for (model, p, c) in checks {
        assert_eq!(c, first, "{model:?} at P={p} diverged");
    }
}

#[test]
fn nbody_checksums_agree_within_tolerance() {
    // N-body models build different trees (global vs local+LET), so the
    // approximation differs slightly; agreement must still be tight.
    let cfg = NBodyConfig::small();
    let amr = AmrConfig::small();
    let reference = run_app(machine(1), App::NBody, Model::Sas, &cfg, &amr).checksum;
    for model in Model::ALL {
        for p in [2, 4] {
            let c = run_app(machine(p), App::NBody, model, &cfg, &amr).checksum;
            let rel = (c - reference).abs() / reference;
            assert!(rel < 0.02, "{model:?} P={p}: relative deviation {rel}");
        }
    }
}

#[test]
fn models_use_only_their_own_communication_style() {
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        let mp = run_app(machine(4), app, Model::Mp, &nb, &am);
        assert!(mp.counters.msgs_sent > 0);
        assert_eq!(mp.counters.puts + mp.counters.gets + mp.counters.amos, 0);
        assert_eq!(mp.counters.misses_remote, 0);

        let sh = run_app(machine(4), app, Model::Shmem, &nb, &am);
        assert!(sh.counters.puts > 0);
        assert_eq!(sh.counters.msgs_sent, 0);
        assert_eq!(sh.counters.misses_remote, 0);

        let sas = run_app(machine(4), app, Model::Sas, &nb, &am);
        assert!(sas.counters.cache_hits > 0);
        assert!(sas.counters.misses_remote > 0);
        assert_eq!(sas.counters.msgs_sent, 0);
        assert_eq!(sas.counters.puts, 0);
    }
}

#[test]
fn breakdown_accounts_for_all_time() {
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let r = run_app(machine(3), app, model, &nb, &am);
            for (pe, bd) in r.per_pe.iter().enumerate() {
                assert!(
                    bd.total() <= r.sim_time,
                    "{app:?}/{model:?} PE {pe}: breakdown exceeds sim time"
                );
                assert!(bd.busy > 0, "{app:?}/{model:?} PE {pe} did no work");
            }
            // The slowest PE's breakdown covers the whole run.
            let max_total = r.per_pe.iter().map(|b| b.total()).max().unwrap();
            assert_eq!(max_total, r.sim_time);
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::WITH_HYBRID {
            let a = run_app(machine(4), app, model, &nb, &am);
            let b = run_app(machine(4), app, model, &nb, &am);
            // Physics is always exactly reproducible.
            assert_eq!(a.checksum, b.checksum, "{app:?}/{model:?}");
            match model {
                // Message and one-sided costs are interleaving-independent:
                // exact timing determinism under any scheduling policy.
                Model::Mp | Model::Shmem => {
                    assert_eq!(a.sim_time, b.sim_time, "{app:?}/{model:?}")
                }
                // Coherence cost accounting depends on thread interleaving
                // (who shares a line when a writer hits it). Under the
                // deterministic scheduler the interleaving is pinned to
                // virtual-time order, so SAS runs repeat *bitwise* — times,
                // per-PE breakdowns, counters, and schedule fingerprint.
                Model::Sas => {
                    let (a, b) = sas_det_pair(app, &nb, &am);
                    assert_eq!(a.checksum, b.checksum, "{app:?}/SAS det");
                    assert_eq!(a.sim_time, b.sim_time, "{app:?}/SAS det");
                    assert_eq!(a.per_pe, b.per_pe, "{app:?}/SAS det");
                    assert_eq!(a.counters, b.counters, "{app:?}/SAS det");
                    assert_eq!(a.sched, b.sched, "{app:?}/SAS det fingerprint");
                }
                // The hybrid's SAS half still runs under the process-default
                // policy here (no per-run policy plumbing yet), so only a
                // tolerance bound holds under free-running OS threads.
                Model::Hybrid => {
                    let rel = (a.sim_time as f64 - b.sim_time as f64).abs() / a.sim_time as f64;
                    assert!(rel < 0.03, "{app:?}/{model:?}: timing spread {rel}");
                }
            }
        }
    }
}

/// Two identical-config CC-SAS runs pinned to the deterministic scheduler.
fn sas_det_pair(app: App, nb: &NBodyConfig, am: &AmrConfig) -> (RunMetrics, RunMetrics) {
    use origin2k::sas::PagePolicy;
    let go = || match app {
        App::NBody => origin2k::apps::nbody_sas::run_with(
            machine(4),
            nb,
            PagePolicy::FirstTouch,
            Some(SchedPolicy::Det),
        ),
        App::Amr => origin2k::apps::amr_sas::run_with(
            machine(4),
            am,
            PagePolicy::FirstTouch,
            Some(SchedPolicy::Det),
        ),
        App::Serve => unreachable!("the serving workload has its own det tests"),
    };
    (go(), go())
}

#[test]
fn circular_shock_workload_also_agrees_bitwise() {
    // The adaptation driver is geometry-agnostic: an expanding circular
    // front (a different, rotationally-symmetric refinement pattern) must
    // preserve the cross-model equivalence too.
    let cfg = AmrConfig {
        circular: true,
        ..AmrConfig::small()
    };
    let nb = NBodyConfig::small();
    let reference = run_app(machine(1), App::Amr, Model::Sas, &nb, &cfg).checksum;
    for model in Model::ALL {
        let c = run_app(machine(4), App::Amr, model, &nb, &cfg).checksum;
        assert_eq!(c, reference, "{model:?} diverged on the circular workload");
    }
    // And it is genuinely a different workload.
    let planar = run_app(machine(1), App::Amr, Model::Sas, &nb, &AmrConfig::small()).checksum;
    assert_ne!(reference, planar);
}

mod config_space {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Cross-model AMR equivalence holds across the configuration
        /// space, not just the defaults: random mesh sizes, band widths,
        /// step/sweep counts and front shapes.
        #[test]
        fn amr_equivalence_over_random_configs(
            nx in 4usize..10,
            ny in 4usize..10,
            steps in 1usize..4,
            sweeps in 1usize..4,
            circular in any::<bool>(),
        ) {
            let cfg = AmrConfig {
                nx,
                ny,
                steps,
                sweeps,
                circular,
                ..AmrConfig::small()
            };
            let nb = NBodyConfig::small();
            let reference =
                run_app(machine(1), App::Amr, Model::Sas, &nb, &cfg).checksum;
            for model in [Model::Mp, Model::Shmem, Model::Hybrid] {
                let c = run_app(machine(4), App::Amr, model, &nb, &cfg).checksum;
                prop_assert_eq!(c, reference, "{:?} diverged on {:?}", model, (nx, ny, steps, sweeps, circular));
            }
        }
    }
}

//! Scaling-shape integration tests: the qualitative results the paper
//! reports must hold in the reproduction (see DESIGN.md §3, "Expected
//! shapes").

use origin2k::prelude::*;

#[test]
fn every_model_speeds_up_to_moderate_pe_counts() {
    let nb = NBodyConfig {
        n: 1024,
        steps: 2,
        ..NBodyConfig::default()
    };
    let am = AmrConfig {
        nx: 16,
        ny: 16,
        steps: 3,
        sweeps: 3,
        ..AmrConfig::default()
    };
    for app in [App::NBody, App::Amr] {
        let sweep = sweep_models(app, &Model::ALL, &[1, 4, 8], &nb, &am);
        for s in &sweep.series {
            let sp = s.speedups();
            assert!(
                sp[2] > 2.0,
                "{app:?}/{:?}: speedup at P=8 only {:.2}",
                s.model,
                sp[2]
            );
            assert!(
                sp[1] > 1.5,
                "{app:?}/{:?}: speedup at P=4 only {:.2}",
                s.model,
                sp[1]
            );
        }
    }
}

#[test]
fn sas_wins_amr_at_scale_and_mpi_lags() {
    // The paper-family headline: for the adaptive mesh application on
    // ccNUMA hardware, CC-SAS beats SHMEM beats MPI at higher P.
    let nb = NBodyConfig::small();
    let am = AmrConfig {
        nx: 24,
        ny: 24,
        steps: 4,
        sweeps: 4,
        ..AmrConfig::default()
    };
    let sweep = sweep_models(App::Amr, &Model::ALL, &[16], &nb, &am);
    let t = |m: Model| sweep.series_for(m).runs[0].sim_time;
    assert!(
        t(Model::Sas) < t(Model::Shmem),
        "SAS ({}) must beat SHMEM ({}) on AMR at P=16",
        t(Model::Sas),
        t(Model::Shmem)
    );
    assert!(
        t(Model::Shmem) < t(Model::Mp),
        "SHMEM ({}) must beat MPI ({}) on AMR at P=16",
        t(Model::Shmem),
        t(Model::Mp)
    );
}

#[test]
fn nbody_models_are_comparable_at_moderate_scale() {
    // For N-body the paper found the three models close, with SAS at least
    // competitive. Allow 25% spread.
    let nb = NBodyConfig {
        n: 1024,
        steps: 2,
        ..NBodyConfig::default()
    };
    let am = AmrConfig::small();
    let sweep = sweep_models(App::NBody, &Model::ALL, &[8], &nb, &am);
    let times: Vec<u64> = sweep.series.iter().map(|s| s.runs[0].sim_time).collect();
    let max = *times.iter().max().unwrap() as f64;
    let min = *times.iter().min().unwrap() as f64;
    assert!(
        max / min < 1.25,
        "N-body models should be comparable at P=8: {times:?}"
    );
}

#[test]
fn mpi_remote_fraction_grows_faster_than_sas_on_amr() {
    let nb = NBodyConfig::small();
    let am = AmrConfig {
        nx: 16,
        ny: 16,
        steps: 3,
        sweeps: 3,
        ..AmrConfig::default()
    };
    let frac = |model: Model, p: usize| {
        let r = run_app(Machine::origin2000(p), App::Amr, model, &nb, &am);
        let (_, _, remote, sync) = r.breakdown().fractions();
        remote + sync
    };
    let mp_overhead = frac(Model::Mp, 16);
    let sas_overhead = frac(Model::Sas, 16);
    assert!(
        mp_overhead > sas_overhead,
        "MPI's explicit machinery must cost more overhead at P=16: {mp_overhead:.3} vs {sas_overhead:.3}"
    );
}

#[test]
fn serial_runs_have_negligible_communication() {
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    for app in [App::NBody, App::Amr] {
        for model in Model::ALL {
            let r = run_app(Machine::origin2000(1), app, model, &nb, &am);
            let (busy, _, _, _) = r.breakdown().fractions();
            assert!(
                busy > 0.85,
                "{app:?}/{model:?} at P=1 should be compute-dominated: busy={busy:.3}"
            );
        }
    }
}

//! Snapshot / restore acceptance tests (DESIGN.md §4g).
//!
//! The contract under test: a snapshot captured at a virtual-time
//! quiescence point, restored into a fresh process, replays the
//! uninterrupted run's tail **bitwise** — same physics checksum bits, same
//! simulated times, same merged counters, same per-link NetStats, same
//! schedule fingerprint. And the capturing run itself is indistinguishable
//! from a plain run: snap gates cost zero virtual time.
//!
//! Two layers of evidence:
//!
//! * **Golden round-trips** — one MP, one SHMEM, and one CC-SAS workload,
//!   each captured at a mid-run step barrier and restored, on BOTH the
//!   thread and event execution backends, on a contended (queued) machine
//!   so NetStats is live and compared.
//! * **Property tests** — random (app, model, backend, P ∈ {2,4,8}, gate
//!   index) round-trips; the invariant never depends on which barrier the
//!   snapshot lands on.

use std::path::PathBuf;
use std::sync::Arc;

use origin2k::machine::ContentionMode;
use origin2k::prelude::*;
use origin2k::snap::{SnapPoint, SnapSpec};

/// A machine with the queued contention model on, so runs carry NetStats
/// and the snapshot round-trip exercises the fabric export/import path.
fn contended(p: usize) -> Arc<Machine> {
    Arc::new(Machine::new(
        p,
        MachineConfig {
            contention: ContentionMode::Queued,
            ..MachineConfig::origin2000()
        },
    ))
}

/// Fresh scratch directory for one round-trip.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "o2ksnap-accept-{}-{}",
        tag.replace('/', "-"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create snapshot scratch dir");
    dir
}

fn det(exec: ExecMode, snap: Option<SnapSpec>) -> RunOpts {
    RunOpts {
        sched: Some(SchedPolicy::Det),
        exec: Some(exec),
        snap,
    }
}

/// Byte-level equivalence of two runs: everything the goldens derive from.
fn assert_same_run(tag: &str, a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "{tag}: checksum bits"
    );
    assert_eq!(a.sim_time, b.sim_time, "{tag}: sim time");
    assert_eq!(a.counters, b.counters, "{tag}: merged counters");
    assert_eq!(a.per_pe, b.per_pe, "{tag}: per-PE breakdowns");
    assert_eq!(a.net, b.net, "{tag}: NetStats");
    let (fa, fb) = (a.sched.as_ref().unwrap(), b.sched.as_ref().unwrap());
    assert_eq!(fa.fingerprint, fb.fingerprint, "{tag}: pick sequence");
    assert_eq!(fa.switches, fb.switches, "{tag}: handoff count");
}

/// Straight run, capture run, restored run — all three must agree on every
/// observable. Returns nothing; panics with `tag` context on divergence.
fn round_trip(
    tag: &str,
    machine: impl Fn() -> Arc<Machine>,
    app: App,
    model: Model,
    exec: ExecMode,
    gate_index: u64,
) {
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    let dir = scratch(tag);
    let gate = SnapPoint {
        name: "step".into(),
        index: gate_index,
    };
    let straight = run_app_opts(machine(), app, model, &nb, &am, det(exec, None));
    let captured = run_app_opts(
        machine(),
        app,
        model,
        &nb,
        &am,
        det(
            exec,
            Some(SnapSpec::Capture {
                dir: dir.clone(),
                point: gate,
            }),
        ),
    );
    let restored = run_app_opts(
        machine(),
        app,
        model,
        &nb,
        &am,
        det(exec, Some(SnapSpec::Restore { dir: dir.clone() })),
    );
    assert_same_run(
        &format!("{tag}: capture run vs straight"),
        &captured,
        &straight,
    );
    assert_same_run(
        &format!("{tag}: restored run vs straight"),
        &restored,
        &straight,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- golden round-trips

/// The acceptance matrix: one workload per model, restored at a mid-run
/// step barrier, on both execution backends, with the contention model on.
#[test]
fn mid_run_restore_replays_the_tail_bitwise_per_model_and_backend() {
    let cases = [
        (App::Amr, Model::Mp),
        (App::NBody, Model::Shmem),
        (App::Amr, Model::Sas),
    ];
    for exec in [ExecMode::Thread, ExecMode::Event] {
        for (app, model) in cases {
            let tag = format!("{}/{}/{exec:?}", app.name(), model.name());
            round_trip(&tag, || contended(4), app, model, exec, 1);
        }
    }
}

/// Restoring a snapshot captured on the thread backend into the event
/// backend (and vice versa) is also exact: the snapshot speaks virtual
/// time, not host threads.
#[test]
fn snapshots_are_portable_across_execution_backends() {
    let nb = NBodyConfig::small();
    let am = AmrConfig::small();
    let dir = scratch("cross-backend");
    let gate = SnapPoint {
        name: "step".into(),
        index: 1,
    };
    let straight = run_app_opts(
        contended(4),
        App::Amr,
        Model::Shmem,
        &nb,
        &am,
        det(ExecMode::Event, None),
    );
    // Capture on the thread backend...
    run_app_opts(
        contended(4),
        App::Amr,
        Model::Shmem,
        &nb,
        &am,
        det(
            ExecMode::Thread,
            Some(SnapSpec::Capture {
                dir: dir.clone(),
                point: gate,
            }),
        ),
    );
    // ...restore on the event backend.
    let restored = run_app_opts(
        contended(4),
        App::Amr,
        Model::Shmem,
        &nb,
        &am,
        det(
            ExecMode::Event,
            Some(SnapSpec::Restore { dir: dir.clone() }),
        ),
    );
    assert_same_run(
        "thread-captured snapshot on event core",
        &restored,
        &straight,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fabric's structure-of-arrays resource table must round-trip
/// through the snapshot codec exactly: drive mid-run traffic (scalar
/// routes, a vectored charge run, a phase boundary), export, import into
/// a fresh fabric, and the restored table must re-export byte-identical
/// and answer every read-side query (stats, hotspots, per-phase reports)
/// identically.
#[test]
fn soa_fabric_state_round_trips_bitwise_mid_run() {
    use origin2k::machine::Topology;
    use origin2k::parallel::NetSim;
    let topo = Topology::new(16, 2);
    let cfg = MachineConfig::origin2000();
    let net = NetSim::new(&topo, &cfg);
    let mut t = 0u64;
    net.begin_phase("warm");
    for i in 0..200usize {
        t += 40;
        let src = i % 8;
        let dst = (src + 3) % 8;
        net.route((src * 2) as u32, src, dst, 256, t);
    }
    net.begin_phase("hot");
    for i in 0..100usize {
        t += 40;
        let src = i % 8;
        // A fill + invalidation-sweep shaped vectored charge.
        let items: Vec<(usize, usize)> = (1..5).map(|d| ((src + d) % 8, 64)).collect();
        net.try_route_many((src * 2) as u32, src, &items, t, true, 0)
            .expect("healthy fabric");
    }
    let bytes = net.export_state_bytes();
    let fresh = NetSim::new(&topo, &cfg);
    fresh
        .import_state_bytes(&bytes)
        .expect("same-shape fabric import");
    assert_eq!(
        fresh.export_state_bytes(),
        bytes,
        "import → export must be the identity on the SoA table"
    );
    assert_eq!(fresh.stats(), net.stats(), "restored NetStats");
    assert_eq!(fresh.hotspots(8), net.hotspots(8), "restored hotspot rows");
    // And the restored fabric keeps evolving identically: one more
    // vectored charge on each must agree delay-for-delay.
    let items = [(5usize, 128usize), (6, 128), (7, 128)];
    let a = net.try_route_many(2, 1, &items, t + 40, true, 0).unwrap();
    let b = fresh.try_route_many(2, 1, &items, t + 40, true, 0).unwrap();
    assert_eq!(a, b, "post-restore charging must continue bitwise");
}

// ------------------------------------------------- property tests

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// snapshot → restore → run ≡ straight run, whatever the model,
        /// team size, backend, or gate the snapshot lands on.
        #[test]
        fn restore_is_exact_everywhere(
            p_idx in 0usize..3,
            model_idx in 0usize..3,
            app_is_amr in 0usize..2,
            event in 0usize..2,
            gate in 0u64..3,
        ) {
            let p = [2usize, 4, 8][p_idx];
            let model = Model::ALL[model_idx];
            let app = if app_is_amr == 1 { App::Amr } else { App::NBody };
            let exec = if event == 1 { ExecMode::Event } else { ExecMode::Thread };
            let tag = format!("prop-{}-{}-p{p}-{exec:?}-g{gate}", app.name(), model.name());
            round_trip(&tag, || Machine::origin2000(p), app, model, exec, gate);
        }
    }
}
